#include "core/round_processor.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "check/check.h"
#include "check/validators.h"

namespace cad::core {

namespace {

// Maps each previous-round community to the current community holding the
// plurality of its members (ties broken by smaller community id, keeping the
// mapping deterministic). A vertex whose current community differs from its
// previous community's successor has *moved* in the sense of Definition 2.
//
// Votes are (prev, cur) keys counted by sorting the key array — runs of
// equal keys are the vote counts, visited in ascending (prev, cur) order, so
// within a prev group the first strictly larger count wins and ties keep the
// smaller cur, exactly as the earlier map-plus-sorted-emit implementation.
// Community ids are dense (Louvain canonicalizes), so the successor tables
// are flat vectors; everything lives in the workspace and is reused.
void PluralitySuccessors(const std::vector<int>& prev_community,
                         const std::vector<int>& cur_community,
                         RoundWorkspace* ws) CAD_REALTIME_AUDITED {
  const size_t n = prev_community.size();
  ws->vote_keys.resize(n);
  int max_prev = 0;
  for (size_t v = 0; v < n; ++v) {
    CAD_DCHECK(prev_community[v] >= 0, "negative community id");
    max_prev = std::max(max_prev, prev_community[v]);
    ws->vote_keys[v] = (static_cast<int64_t>(prev_community[v]) << 32) |
                       static_cast<uint32_t>(cur_community[v]);
  }
  std::sort(ws->vote_keys.begin(), ws->vote_keys.end());

  ws->successor.assign(max_prev + 1, -1);
  ws->successor_count.assign(max_prev + 1, 0);
  size_t i = 0;
  while (i < n) {
    const int64_t key = ws->vote_keys[i];
    int count = 0;
    for (; i < n && ws->vote_keys[i] == key; ++i) ++count;
    const int prev = static_cast<int>(key >> 32);
    const int cur = static_cast<int>(key & 0xffffffff);
    if (ws->successor[prev] < 0 || count > ws->successor_count[prev]) {
      ws->successor_count[prev] = count;
      ws->successor[prev] = cur;
    }
  }
}

}  // namespace

RoundWorkspace* RoundProcessor::ResolveWorkspace(RoundWorkspace* workspace) {
  if (workspace != nullptr) return workspace;
  if (owned_workspace_ == nullptr) {
    // cad-lint: allow(CL007) one-time lazy construction on the first externally-workspace-less round; pooled callers never reach this branch
    owned_workspace_ = std::make_unique<RoundWorkspace>();
  }
  return owned_workspace_.get();
}

const RoundOutput& RoundProcessor::ProcessWindow(
    const ts::MultivariateSeries& series, int start,
    RoundWorkspace* workspace) CAD_REALTIME_AUDITED {
  CAD_CHECK(series.n_sensors() == n_sensors_, "sensor count mismatch");
  RoundWorkspace* ws = ResolveWorkspace(workspace);
  out_.Clear();  // cleared before the stage timers start accumulating
  obs::Span round_span(tracer_, span_name_);
  obs::ScopedHistogramTimer round_timer(metrics_.round_seconds,
                                        &out_.round_seconds);
  if (options_.incremental_correlation && !options_.use_spearman) {
    {
      obs::Span corr_span(tracer_, "correlation");
      obs::ScopedHistogramTimer corr_timer(metrics_.correlation_seconds,
                                           &out_.correlation_seconds);
      if (rolling_ == nullptr) {
        // cad-lint: allow(CL007) one-time lazy construction on the first round only; every later round takes the SlideTo branch
        rolling_ = std::make_unique<stats::RollingCorrelationTracker>(
            n_sensors_, options_.window);
        rolling_->Reset(series, start);
      } else {
        rolling_->SlideTo(series, start);
      }
      rolling_->CorrelationsInto(&ws->correlation);
    }
    return FinishRound(ws->correlation, &round_span, ws);
  }
  obs::Span corr_span(tracer_, "correlation");
  Stopwatch corr_watch;
  stats::WindowCorrelationMatrixInto(
      series, start, options_.window,
      options_.use_spearman ? stats::CorrelationKind::kSpearman
                            : stats::CorrelationKind::kPearson,
      options_.n_threads, &ws->correlation_scratch, &ws->correlation);
  out_.correlation_seconds = corr_watch.ElapsedSeconds();
  metrics_.correlation_seconds->Observe(out_.correlation_seconds);
  corr_span.End();
  return FinishRound(ws->correlation, &round_span, ws);
}

const RoundOutput& RoundProcessor::ProcessCorrelation(
    const stats::CorrelationMatrix& corr,
    RoundWorkspace* workspace) CAD_REALTIME_AUDITED {
  RoundWorkspace* ws = ResolveWorkspace(workspace);
  out_.Clear();
  obs::Span round_span(tracer_, span_name_);
  obs::ScopedHistogramTimer round_timer(metrics_.round_seconds,
                                        &out_.round_seconds);
  return FinishRound(corr, &round_span, ws);
}

const RoundOutput& RoundProcessor::FinishRound(
    const stats::CorrelationMatrix& corr, obs::Span* round_span,
    RoundWorkspace* ws_ptr) CAD_REALTIME_AUDITED {
  RoundWorkspace& ws = *ws_ptr;
  CAD_CHECK(corr.size() == n_sensors_, "correlation matrix size mismatch");
  if (round_span->active()) {
    // cad-lint: allow(CL007) guarded by active(): only runs when a tracer is attached, an opt-in diagnostic mode
    round_span->AddArg("round", std::to_string(rounds_processed_));
  }
  RoundOutput& out = out_;  // Clear()ed by the ProcessWindow/Correlation entry
  Stopwatch stage_watch;

  // Phase 1: TSG + community detection.
  graph::KnnGraphOptions knn_options{.k = options_.k, .tau = options_.tau};
  graph::KnnGraphStats tsg_stats;
  obs::Span knn_span(tracer_, "knn_graph");
  graph::BuildKnnGraphInto(corr, knn_options, &ws.knn,
                           &ws.tsg, &tsg_stats);
  const graph::Graph& tsg = ws.tsg;
  knn_span.End();
  out.knn_seconds = stage_watch.ElapsedSeconds();
  metrics_.knn_build_seconds->Observe(out.knn_seconds);
  out.n_edges = static_cast<int>(tsg.n_edges());
  // Stage-boundary contract (CAD_CHECK_LEVEL=full only): the TSG must be a
  // symmetric simple graph of correlation edges; the union-kNN construction
  // bounds the edge count by n * k, not the degree.
  CAD_VALIDATE(check::ValidateGraph(
      tsg,
      check::GraphBounds{
          .max_edges = static_cast<int64_t>(n_sensors_) * options_.k,
          .max_abs_weight = 1.0 + 1e-6},
      options_.metrics_registry));

  stage_watch.Restart();
  obs::Span louvain_span(tracer_, "louvain");
  graph::LouvainInto(tsg, {}, &ws.louvain, &ws.partition);
  const graph::Partition& partition = ws.partition;
  louvain_span.End();
  out.louvain_seconds = stage_watch.ElapsedSeconds();
  metrics_.louvain_seconds->Observe(out.louvain_seconds);
  out.n_communities = partition.n_communities;
  out.modularity = partition.modularity;
  CAD_VALIDATE(check::ValidatePartition(partition, n_sensors_,
                                        options_.metrics_registry));

  stage_watch.Restart();
  obs::Span coapp_span(tracer_, "co_appearance");

  // Phase 2: co-appearance mining against the previous round, plus the
  // Definition 2 moved-vertex flags used for sensor attribution.
  if (!prev_community_.empty()) {
#if CAD_VALIDATE_ENABLED
    // Keep this round's S_r(v) so the independent recount in
    // ValidateCoAppearance can cross-check the tracker's bookkeeping.
    const std::vector<int>& coappearance_counts =
        tracker_.Observe(prev_community_, partition.community);
    CAD_VALIDATE(check::ValidateCoAppearance(coappearance_counts,
                                             prev_community_,
                                             partition.community,
                                             options_.metrics_registry));
    CAD_VALIDATE(check::ValidateCoAppearanceTracker(tracker_,
                                                    options_.metrics_registry));
#else
    tracker_.Observe(prev_community_, partition.community);
#endif
    PluralitySuccessors(prev_community_, partition.community, &ws);
    for (int v = 0; v < n_sensors_; ++v) {
      if (partition.community[v] != ws.successor[prev_community_[v]]) {
        last_moved_round_[v] = rounds_processed_;
      }
    }
  }
  for (int v = 0; v < n_sensors_; ++v) {
    // cad-lint: allow(CL007) RoundOutput is Clear()-and-reuse: bounded by n_sensors, capacity retained across rounds
    if (tracker_.ratio(v) < options_.theta) out.outliers.push_back(v);
  }

  // Phase 3: variation analysis. n_r counts vertices transitioning between
  // outlier and normal states across the two most recent rounds.
  std::vector<uint8_t>& cur_flags = ws.cur_flags;
  cur_flags.assign(n_sensors_, 0);
  for (int v : out.outliers) cur_flags[v] = 1;
  int n_variations = 0;
  for (int v = 0; v < n_sensors_; ++v) {
    if (cur_flags[v] != outlier_flags_[v]) {
      ++n_variations;
      if (cur_flags[v]) {
        // cad-lint: allow(CL007) Clear()-and-reuse RoundOutput buffer, bounded by n_sensors
        out.entered.push_back(v);
        const int recency = options_.rc_window > 0 ? options_.rc_window : 8;
        if (last_moved_round_[v] >= 0 &&
            rounds_processed_ - last_moved_round_[v] <= recency) {
          // cad-lint: allow(CL007) Clear()-and-reuse RoundOutput buffer, bounded by n_sensors
          out.entered_movers.push_back(v);
        }
      } else {
        // cad-lint: allow(CL007) Clear()-and-reuse RoundOutput buffer, bounded by n_sensors
        out.exited.push_back(v);
      }
    }
  }
  out.n_variations = n_variations;
  coapp_span.End();
  out.coappearance_seconds = stage_watch.ElapsedSeconds();
  metrics_.coappearance_seconds->Observe(out.coappearance_seconds);

  metrics_.rounds_total->Increment();
  metrics_.outlier_variations->Increment(static_cast<uint64_t>(n_variations));
  metrics_.tsg_edges_pruned->Increment(
      static_cast<uint64_t>(tsg_stats.pruned_pairs()));
  metrics_.tsg_edges_kept->Increment(
      static_cast<uint64_t>(tsg_stats.kept_edges));
  metrics_.communities->Set(out.n_communities);
  metrics_.outliers->Set(static_cast<double>(out.outliers.size()));

  prev_community_.assign(partition.community.begin(),
                         partition.community.end());
  std::swap(outlier_flags_, cur_flags);
  ++rounds_processed_;
  // Stage-boundary contract (CAD_CHECK_LEVEL=full only): every reused
  // workspace buffer must still be shaped for this problem size.
  CAD_VALIDATE(check::ValidateRoundWorkspace(ws, n_sensors_,
                                             options_.metrics_registry));
  return out;
}

void RoundProcessor::Reset() {
  tracker_.Reset();
  prev_community_.clear();
  std::fill(outlier_flags_.begin(), outlier_flags_.end(), 0);
  std::fill(last_moved_round_.begin(), last_moved_round_.end(), -1);
  rolling_.reset();
  rounds_processed_ = 0;
}

}  // namespace cad::core
