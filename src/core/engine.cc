#include "core/engine.h"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "check/check.h"
#include "check/validators.h"
#include "common/alloc_tracker.h"
#include "obs/trace.h"
#include "ts/window.h"

namespace cad::core {

DecisionPolicy::Decision DecisionPolicy::Judge(
    int round, int n_variations) const CAD_REALTIME {
  Decision decision;
  decision.mu = stats_.mean();
  decision.sigma = stats_.stddev();
  if (round <= 0 || round < burn_in_ || stats_.count() == 0) return decision;
  const double deviation = std::abs(n_variations - decision.mu);
  if (options_.use_sigma_rule) {
    // A zero sigma would make the >= comparison fire on every round
    // including n_r == mu; the tiny floor keeps the faithful "any deviation
    // from mu is abnormal" semantics in that degenerate case.
    const double sigma = std::max(decision.sigma, options_.min_sigma);
    const double threshold = std::max(options_.eta * sigma, 1e-9);
    decision.threshold = threshold;
    decision.abnormal = deviation >= threshold;
    decision.score = std::min(1.0, 0.5 * deviation / threshold);
  } else {
    decision.threshold = options_.fixed_xi;
    decision.abnormal = n_variations >= options_.fixed_xi;
    decision.score = std::min(
        1.0, 0.5 * n_variations / static_cast<double>(options_.fixed_xi));
  }
  return decision;
}

void AnomalyAssembler::Observe(
    int round, bool abnormal, const RoundOutput& out, int window_start_time,
    int window_end_time, const CoAppearanceTracker& tracker)
    CAD_REALTIME_AUDITED {
  if (abnormal) {
    if (open_first_round_ < 0) {
      open_first_round_ = round;
      open_start_time_ = window_start_time;
      open_detection_time_ = window_end_time - 1;
    }
    // Candidates are the vertices newly turned outlier: pre-existing
    // outliers are background isolates, not sensors this anomaly affected.
    for (int v : out.entered) {
      if (!open_sensor_flags_[v]) {
        open_sensor_flags_[v] = 1;
        // cad-lint: allow(CL007) bounded by n_sensors, capacity retained across anomalies (engine_alloc_test proves 0 steady-state allocs)
        open_sensors_.push_back(v);
      }
    }
    // cad-lint: allow(CL007) same bounded capacity-retained buffer as open_sensors_ above
    for (int v : out.entered_movers) open_movers_.push_back(v);
  } else if (open_first_round_ >= 0) {
    Close(last_round_, prev_window_end_, tracker);
  }
  last_round_ = round;
  prev_window_end_ = window_end_time;
}

void AnomalyAssembler::Finish(const CoAppearanceTracker& tracker) {
  if (open_first_round_ >= 0) Close(last_round_, prev_window_end_, tracker);
}

void AnomalyAssembler::Close(int last_round, int end_time,
                             const CoAppearanceTracker& tracker)
    CAD_REALTIME_AUDITED {
  Anomaly anomaly;
  // Attribution (V_Z): prefer vertices that moved communities themselves
  // (Definition 2) over peers merely abandoned by defectors; then keep the
  // ones whose RC is still depressed at close time — defectors stay low,
  // grazed peers have already recovered (cad_options.h).
  const std::vector<int>& candidates =
      !open_movers_.empty() ? open_movers_ : open_sensors_;
  const double cut = options_.EffectiveAttributionCut();
  for (int v : candidates) {
    // cad-lint: allow(CL007) anomaly close is a rare event, not round steady state; the list is bounded by n_sensors
    if (tracker.ratio(v) < cut) anomaly.sensors.push_back(v);
  }
  if (anomaly.sensors.empty()) anomaly.sensors = candidates;
  std::sort(anomaly.sensors.begin(), anomaly.sensors.end());
  anomaly.sensors.erase(
      std::unique(anomaly.sensors.begin(), anomaly.sensors.end()),
      anomaly.sensors.end());
  anomaly.first_round = open_first_round_;
  anomaly.last_round = last_round;
  anomaly.start_time = open_start_time_;
  anomaly.end_time = end_time;
  anomaly.detection_time = open_detection_time_;
  metrics_.anomalies_total->Increment();
  // cad-lint: allow(CL007) one append per closed anomaly, not per round; the move keeps it a pointer swap
  anomalies_.push_back(std::move(anomaly));
  open_sensors_.clear();
  open_movers_.clear();
  std::fill(open_sensor_flags_.begin(), open_sensor_flags_.end(), 0);
  open_first_round_ = -1;
}

DetectionEngine::DetectionEngine(int n_sensors, const CadOptions& options)
    : n_sensors_(n_sensors),
      options_(options),
      metrics_(obs::PipelineMetrics::For(
          obs::ResolveRegistry(options.metrics_registry))),
      processor_(n_sensors, options),
      policy_(options),
      assembler_(n_sensors, options, metrics_),
      recorder_(options.flight_log_capacity, n_sensors) {
  if (!options_.flight_crash_dump_path.empty()) {
    recorder_.EnableCrashDump(options_.flight_crash_dump_path);
  }
}

Status DetectionEngine::WarmUp(const ts::MultivariateSeries& historical) {
  if (historical.n_sensors() != n_sensors_) {
    return Status::InvalidArgument(
        "historical series has a different sensor count");
  }
  CAD_RETURN_NOT_OK(options_.Validate(historical.length()));
  Result<ts::WindowPlan> plan = ts::WindowPlan::Make(
      historical.length(), options_.window, options_.step);
  if (!plan.ok()) return plan.status();

  obs::Span warmup_span(obs::ResolveTracer(options_.tracer), "warmup");
  RoundProcessor processor(n_sensors_, options_);
  // Distinguish warm-up rounds from detection rounds in the trace: only
  // "round" spans correspond to detection rounds the drivers report.
  processor.set_span_name("warmup_round");
  const int burn_in = options_.EffectiveBurnIn();
  for (int r = 0; r < plan.value().rounds(); ++r) {
    const RoundOutput& round =
        processor.ProcessWindow(historical, plan.value().start(r));
    // Cold-start rounds are artifacts of the empty outlier state, not data.
    if (r >= burn_in) policy_.Seed(round.n_variations);
  }
  // Stage-boundary contract (CAD_CHECK_LEVEL=full only): warm-up must leave
  // a well-formed mu/sigma accumulator behind.
  CAD_VALIDATE(check::ValidateRunningStats(policy_.stats(),
                                           options_.metrics_registry));
  return Status::Ok();
}

EngineRound DetectionEngine::Step(const ts::MultivariateSeries& series,
                                  int start, int window_start_time,
                                  int window_end_time,
                                  RoundWorkspace* workspace)
    CAD_REALTIME_AUDITED {
  const int64_t allocs_before = common::ThreadAllocCount();

  const RoundOutput& out = processor_.ProcessWindow(series, start, workspace);

  EngineRound result;
  result.round = round_index_;
  result.output = &out;
  const DecisionPolicy::Decision decision =
      policy_.Judge(round_index_, out.n_variations);
  result.abnormal = decision.abnormal;
  result.score = decision.score;
  result.mu = decision.mu;
  result.sigma = decision.sigma;
  result.threshold = decision.threshold;

  const size_t anomalies_before = assembler_.anomalies().size();
  assembler_.Observe(round_index_, decision.abnormal, out, window_start_time,
                     window_end_time, processor_.tracker());
  if (decision.abnormal) metrics_.abnormal_rounds_total->Increment();
  // Every n_r (abnormal or not) sharpens mu/sigma — after the decision, so a
  // round is never judged against statistics containing itself.
  policy_.Update(round_index_, out.n_variations);

  if (recorder_.enabled()) {
    // Ring slots are preallocated for n_sensors ids, so filling one is
    // assign()s into reserved capacity — no heap traffic, same contract as
    // the round itself.
    obs::DecisionRecord& rec = recorder_.BeginRecord();
    rec.round = round_index_;
    rec.window_start = window_start_time;
    rec.window_end = window_end_time;
    rec.n_variations = out.n_variations;
    rec.mu = decision.mu;
    rec.sigma = decision.sigma;
    rec.threshold = decision.threshold;
    rec.score = decision.score;
    rec.abnormal = decision.abnormal;
    rec.anomaly_open = assembler_.open();
    rec.n_outliers = static_cast<int>(out.outliers.size());
    rec.n_communities = out.n_communities;
    rec.n_edges = out.n_edges;
    rec.modularity = out.modularity;
    rec.entered.assign(out.entered.begin(), out.entered.end());
    rec.exited.assign(out.exited.begin(), out.exited.end());
    rec.movers.assign(out.entered_movers.begin(), out.entered_movers.end());
    rec.correlation_seconds = out.correlation_seconds;
    rec.knn_seconds = out.knn_seconds;
    rec.louvain_seconds = out.louvain_seconds;
    rec.coappearance_seconds = out.coappearance_seconds;
    rec.round_seconds = out.round_seconds;
    recorder_.Commit();
  }

  CAD_VALIDATE(check::ValidateRunningStats(policy_.stats(),
                                           options_.metrics_registry));
  CAD_VALIDATE(check::ValidateAssembler(assembler_, n_sensors_,
                                        options_.metrics_registry));
  ++round_index_;

  metrics_.round_allocs->Set(
      static_cast<double>(common::ThreadAllocCount() - allocs_before));
  // After the alloc accounting: a close-time flight-log append is file I/O,
  // not round work, and only happens on the rare round that closes one.
  if (assembler_.anomalies().size() > anomalies_before) {
    DumpClosedAnomalies(anomalies_before);
  }
  return result;
}

void DetectionEngine::Finish() {
  const size_t anomalies_before = assembler_.anomalies().size();
  assembler_.Finish(processor_.tracker());
  if (assembler_.anomalies().size() > anomalies_before) {
    DumpClosedAnomalies(anomalies_before);
  }
}

void DetectionEngine::DumpClosedAnomalies(size_t first_new) {
  if (!recorder_.enabled() || options_.flight_log_path.empty()) return;
  std::string jsonl;
  for (size_t i = first_new; i < assembler_.anomalies().size(); ++i) {
    const Anomaly& anomaly = assembler_.anomalies()[i];
    recorder_.AppendRangeJsonl(anomaly.first_round, anomaly.last_round,
                               &jsonl);
  }
  if (jsonl.empty()) return;
  // cad-lint: allow(CL007) opt-in close-time flight-log append, sequenced after Step's alloc accounting by design
  std::ofstream file(options_.flight_log_path, std::ios::app);
  if (file) file << jsonl;
}

}  // namespace cad::core
