// DetectionReport serialization: dependency-free JSON export for dashboards
// and downstream tooling (used by the detect_csv CLI's --report flag).
#ifndef CAD_CORE_REPORT_IO_H_
#define CAD_CORE_REPORT_IO_H_

#include <string>

#include "common/status.h"
#include "core/cad_detector.h"

namespace cad::core {

struct ReportJsonOptions {
  // Include the per-round trace (can be large: one entry per round).
  bool include_rounds = false;
  // Include the per-point score series.
  bool include_scores = false;
};

// Serializes the report to a JSON object string:
// {
//   "anomalies": [{"start": ..., "end": ..., "detection_time": ...,
//                  "first_round": ..., "last_round": ..., "sensors": [...]}],
//   "rounds_processed": N, "warmup_seconds": ..., "detect_seconds": ...,
//   "seconds_per_round": ...,
//   "round_latency": {"mean": ..., "p50": ..., "p95": ..., "p99": ...},
//   "rounds": [...optional...], "scores": [...optional...]
// }
std::string ReportToJson(const DetectionReport& report,
                         const ReportJsonOptions& options = {});

// Writes ReportToJson(...) to a file.
[[nodiscard]] Status WriteReportJson(const DetectionReport& report, const std::string& path,
                       const ReportJsonOptions& options = {});

}  // namespace cad::core

#endif  // CAD_CORE_REPORT_IO_H_
