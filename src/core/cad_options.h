// Tunables of the CAD detector (paper Table I and Section VI-H).
#ifndef CAD_CORE_CAD_OPTIONS_H_
#define CAD_CORE_CAD_OPTIONS_H_

#include <string>

#include "common/status.h"

namespace cad::obs {
class Registry;
class Tracer;
}  // namespace cad::obs

namespace cad::core {

struct CadOptions {
  // Sliding window w and step s, in time points (paper suggests
  // w in [0.01|T|, 0.03|T|] and s in [0.01w, 0.02w], with s >= 1).
  int window = 100;
  int step = 2;

  // Number of nearest neighbours per vertex in the TSG (Table II).
  int k = 10;

  // Correlation threshold tau: TSG edges with |corr| < tau are pruned.
  double tau = 0.5;

  // Correlation measure for TSG edges. false (default) = Pearson, the
  // paper's choice; true = Spearman rank correlation — robust to monotone
  // sensor distortions and heavy-tailed spikes at O(w log w) extra cost.
  bool use_spearman = false;

  // Threads for the O(n^2 w) window-correlation matrix (results are
  // bitwise-identical for any value). 1 = serial; worthwhile from a few
  // hundred sensors (IS-3..IS-5 scale).
  int n_threads = 1;

  // Maintain the correlation matrix incrementally across rounds — O(n^2 s)
  // per round instead of O(n^2 w), a ~w/s-fold TPR improvement at the
  // paper-recommended s ≈ 0.02 w (see stats/rolling_correlation.h).
  // Correlations differ from the direct computation only by float rounding
  // (~1e-12). Ignored under Spearman (ranks are not slide-updatable).
  bool incremental_correlation = false;

  // Outlier threshold theta on the ratio of co-appearance number RC_{v,r}
  // (Definition 7). The paper recommends ~0.3 under its global (n-1)
  // normalization, where a perfectly stable vertex sits at roughly
  // (community size - 1)/(n - 1) — i.e. theta is placed just below the
  // stable level. Under the default community normalization the stable
  // level is exactly 1.0, so the corresponding setting is just below 1:
  // with rc_window = 8, theta = 0.9 flags a vertex after a single full
  // defection round ((7*1 + 0)/8 = 0.875 < 0.9) while tolerating partial
  // peer churn — the "drop drastically" semantics of Section IV-C.
  double theta = 0.9;

  // RC computation (see co_appearance.h for why the defaults deviate from a
  // literal Equation 3 and how to switch back for ablation).
  // rc_window: transitions averaged into RC (0 = full history).
  int rc_window = 8;
  // rc_global_normalization: true = divide S by (n-1) as in Eq. 3; false =
  // divide by the vertex's previous community size - 1 (default).
  bool rc_global_normalization = false;

  // Time-domain footprint of an abnormal round in the per-point score /
  // label series: the trailing `window_mark_fraction` of the window.
  // 1.0 = the whole window [start_r, end_r) — the paper's sub-matrix-column
  // semantics, earliest possible first detection but up to w pre-onset
  // false-positive points per anomaly; values near s/w mark only the fresh
  // slice — near-perfect precision but detections lag by ~w/2. The default
  // 0.5 marks [start_r + w/2, end_r): the anomaly had to occupy roughly half
  // the window before correlations broke, so the trailing half is the best
  // single guess of the overlap (measured PA/DPA trade-off in EXPERIMENTS.md).
  double window_mark_fraction = 0.5;

  // Sensor attribution. V_Z collects the vertices that *entered* the outlier
  // set during the anomaly's rounds (vertices that were already outliers
  // beforehand are background isolates, not "affected"). When the anomaly
  // closes, a candidate is kept only if its RC is still below this cut —
  // genuinely defected sensors stay near 0 while community peers that were
  // merely grazed by the defection recover towards 1 immediately. -1 = auto
  // (0.75 * theta). If the cut would empty the set, all candidates are kept.
  double attribution_rc_cut = -1.0;

  double EffectiveAttributionCut() const {
    return attribution_rc_cut >= 0.0 ? attribution_rc_cut : 0.75 * theta;
  }

  // Rounds after a (re)start during which no abnormal decision is made and
  // n_r is not folded into mu / sigma: re-initializing the outlier state
  // (Algorithm 2 line 2 resets O_0) makes the first few rounds' variation
  // counts artifacts of the cold start, not data. -1 = auto
  // (max(2, rc_window)).
  int burn_in_rounds = -1;

  // Resolved burn-in value.
  int EffectiveBurnIn() const {
    if (burn_in_rounds >= 0) return burn_in_rounds;
    return rc_window > 2 ? rc_window : 2;
  }

  // Sigma multiplier eta in the abnormal-round rule |n_r - mu| >= eta * sigma
  // (paper sets eta = 3 via Chebyshev's inequality).
  double eta = 3.0;

  // Lower bound on sigma when applying the eta-sigma rule. The paper's rule
  // degenerates when the warm-up variance is 0 (any deviation triggers); a
  // small floor keeps behaviour sane on synthetic noise-free data. 0 is the
  // fully faithful setting.
  double min_sigma = 0.0;

  // Ablation switch (DESIGN.md §4.1): when false, a round is abnormal when
  // the raw outlier-variation count satisfies n_r >= fixed_xi, bypassing the
  // adaptive eta-sigma rule.
  bool use_sigma_rule = true;
  int fixed_xi = 1;

  // Observability (DESIGN.md "Observability"). nullptr = the process-wide
  // obs::Registry::Global() / obs::Tracer::Global(). Metrics are always
  // recorded (lock-free atomics); span tracing additionally requires the
  // resolved tracer to be Enable()d — the global one is off by default, so
  // the untraced hot path pays roughly one branch per span site.
  obs::Registry* metrics_registry = nullptr;
  obs::Tracer* tracer = nullptr;

  // Flight recorder (obs/flight_recorder.h): the engine keeps the last
  // `flight_log_capacity` rounds of decision provenance in a
  // preallocated ring. 0 disables recording (and every feature below).
  int flight_log_capacity = 256;
  // When set, the engine appends the rounds of every anomaly to this JSONL
  // file the moment the anomaly closes (the held subset, oldest first).
  std::string flight_log_path;
  // When set, a CAD_CHECK failure dumps the whole ring here (truncating)
  // before the process dies.
  std::string flight_crash_dump_path;

  // Exposition server (obs/exposition_server.h), honoured by StreamingCad
  // only: -1 (default) = no server; 0 = serve on an ephemeral 127.0.0.1
  // port (StreamingCad::exposition_port() reports it); 1..65535 = that port.
  int exposition_port = -1;

  // Validates the option set against a series length.
  [[nodiscard]] Status Validate(int series_length) const {
    if (window <= 0 || step <= 0) {
      return Status::InvalidArgument("window and step must be positive");
    }
    if (step >= window) {
      return Status::InvalidArgument("step must be smaller than window (s < w)");
    }
    if (window > series_length) {
      return Status::InvalidArgument("window exceeds series length");
    }
    if (k < 1) return Status::InvalidArgument("k must be >= 1");
    if (tau < 0.0 || tau > 1.0) {
      return Status::InvalidArgument("tau must lie in [0, 1]");
    }
    if (theta < 0.0 || theta > 1.0) {
      return Status::InvalidArgument("theta must lie in [0, 1]");
    }
    if (eta <= 0.0) return Status::InvalidArgument("eta must be positive");
    if (rc_window < 0) {
      return Status::InvalidArgument("rc_window must be >= 0");
    }
    if (n_threads < 1) {
      return Status::InvalidArgument("n_threads must be >= 1");
    }
    if (window_mark_fraction <= 0.0 || window_mark_fraction > 1.0) {
      return Status::InvalidArgument(
          "window_mark_fraction must lie in (0, 1]");
    }
    if (!use_sigma_rule && fixed_xi < 1) {
      return Status::InvalidArgument("fixed_xi must be >= 1");
    }
    if (flight_log_capacity < 0) {
      return Status::InvalidArgument("flight_log_capacity must be >= 0");
    }
    if (flight_log_capacity == 0 &&
        (!flight_log_path.empty() || !flight_crash_dump_path.empty())) {
      return Status::InvalidArgument(
          "flight log / crash dump paths need flight_log_capacity > 0");
    }
    if (exposition_port < -1 || exposition_port > 65535) {
      return Status::InvalidArgument(
          "exposition_port must be -1 (off) or a port in [0, 65535]");
    }
    return Status::Ok();
  }
};

}  // namespace cad::core

#endif  // CAD_CORE_CAD_OPTIONS_H_
