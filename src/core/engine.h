// DetectionEngine: the driver-independent core of CAD's Algorithm 2.
//
// CadDetector (batch) and StreamingCad (online) are thin drivers over this
// engine: the batch driver walks a WindowPlan over a stored series, the
// streaming driver materializes windows from a ring buffer under a mutex —
// but the round loop itself (Algorithm 1 via RoundProcessor, the eta-sigma
// decision, the running mu/sigma update, and anomaly assembly) lives here
// exactly once. DESIGN.md "Engine architecture" shows the full picture and
// how to add a third driver.
//
// The engine is not synchronized; drivers that need thread safety (the
// streaming driver) wrap it in their own lock. Each Step also publishes the
// number of heap allocations it performed as the `cad_round_allocs` gauge
// (real counts only in binaries that link cad_alloc_hook; see
// common/alloc_tracker.h) — the steady-state contract is zero.
#ifndef CAD_CORE_ENGINE_H_
#define CAD_CORE_ENGINE_H_

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/realtime.h"
#include "common/status.h"
#include "core/cad_options.h"
#include "core/round_processor.h"
#include "core/types.h"
#include "obs/flight_recorder.h"
#include "obs/pipeline_metrics.h"
#include "stats/running_stats.h"
#include "ts/multivariate_series.h"

namespace cad::core {

// The eta-sigma abnormality rule (paper Theorem 1) plus the running mu/sigma
// state it judges against (the series N of Algorithm 2). Judging and
// updating are split so a round is always judged with the statistics that
// exclude its own n_r, in both drivers.
class DecisionPolicy {
 public:
  struct Decision {
    bool abnormal = false;
    // Normalized deviation in [0, 1]; 0.5 sits exactly on the decision
    // boundary, so thresholding a score series at 0.5 reproduces the rule.
    double score = 0.0;
    double mu = 0.0;     // statistics used for the decision
    double sigma = 0.0;
    // Deviation threshold the rule applied: eta * max(sigma, min_sigma)
    // (floored) under the sigma rule, fixed_xi under the ablation rule, and
    // 0 when the round was not judged (round 0 / burn-in / empty stats).
    double threshold = 0.0;
  };

  explicit DecisionPolicy(const CadOptions& options)
      : options_(options), burn_in_(options.EffectiveBurnIn()) {}

  // Judges round `round` carrying n_r = `n_variations` against the current
  // statistics. Round 0 has no preceding round (the paper's r > 1 guard),
  // burn-in rounds carry cold-start artifacts, and rounds with no statistics
  // yet cannot deviate from them; none of those can be abnormal.
  Decision Judge(int round, int n_variations) const CAD_REALTIME;

  // Folds n_r into mu/sigma (burn-in rounds are cold-start artifacts of the
  // empty outlier state, not data, and are skipped).
  void Update(int round, int n_variations) CAD_REALTIME {
    if (round >= burn_in_) stats_.Add(n_variations);
  }

  // Warm-up seeding (Algorithm 2, WarmUp): the caller applies its own
  // burn-in filter over the historical rounds.
  void Seed(int n_variations) CAD_REALTIME { stats_.Add(n_variations); }

  const stats::RunningStats& stats() const { return stats_; }

 private:
  CadOptions options_;
  int burn_in_;
  stats::RunningStats stats_;  // the series N of Algorithm 2
};

// Folds per-round decisions into anomalies Z = (V_Z, R_Z): consecutive
// abnormal rounds form one open anomaly; the first normal round after them
// closes it. V_Z prefers vertices that moved communities themselves
// (Definition 2) over peers merely abandoned by defectors, then keeps the
// ones whose RC is still depressed at close time (cad_options.h).
class AnomalyAssembler {
 public:
  AnomalyAssembler(int n_sensors, const CadOptions& options,
                   const obs::PipelineMetrics& metrics)
      : n_sensors_(n_sensors),
        options_(options),
        metrics_(metrics),
        open_sensor_flags_(n_sensors, 0) {}

  // Feeds one round's decision. `window_start_time` / `window_end_time` are
  // the round's window [start, end) on the driver's global time axis; the
  // anomaly's detection_time is the end of its first abnormal window, minus
  // one, and its end_time is the end of its last abnormal window.
  void Observe(int round, bool abnormal, const RoundOutput& out,
               int window_start_time, int window_end_time,
               const CoAppearanceTracker& tracker) CAD_REALTIME_AUDITED;

  // Closes any anomaly still open after the final round (batch end-of-series).
  void Finish(const CoAppearanceTracker& tracker);

  bool open() const { return open_first_round_ >= 0; }
  const std::vector<Anomaly>& anomalies() const { return anomalies_; }
  std::vector<Anomaly> TakeAnomalies() { return std::move(anomalies_); }

  // Introspection for check::ValidateAssembler (and tests).
  int open_first_round() const { return open_first_round_; }
  const std::vector<int>& open_sensors() const { return open_sensors_; }
  const std::vector<int>& open_movers() const { return open_movers_; }
  const std::vector<uint8_t>& open_sensor_flags() const {
    return open_sensor_flags_;
  }

 private:
  // Audited rather than strict: closing pushes the finished anomaly onto
  // anomalies_ (bounded by the anomaly count, capacity retained) — a rare
  // event, not steady-state round work.
  void Close(int last_round, int end_time,
             const CoAppearanceTracker& tracker) CAD_REALTIME_AUDITED;

  int n_sensors_;
  CadOptions options_;
  obs::PipelineMetrics metrics_;

  std::vector<Anomaly> anomalies_;
  std::vector<int> open_sensors_;  // entered outliers while the anomaly is open
  std::vector<int> open_movers_;   // ... that also moved (Definition 2)
  std::vector<uint8_t> open_sensor_flags_;  // membership of open_sensors_
  int open_first_round_ = -1;
  int open_start_time_ = 0;
  int open_detection_time_ = 0;
  int last_round_ = -1;       // most recently observed round
  int prev_window_end_ = 0;   // its window end (the close-time end_time)
};

// What one engine round produced. `output` points at the engine's reused
// round state and stays valid until the next Step.
struct EngineRound {
  int round = 0;
  const RoundOutput* output = nullptr;
  bool abnormal = false;
  double score = 0.0;
  double mu = 0.0;     // statistics used for the decision (pre-update)
  double sigma = 0.0;
  double threshold = 0.0;  // deviation threshold applied (0 = not judged)
};

class DetectionEngine {
 public:
  DetectionEngine(int n_sensors, const CadOptions& options);

  // Algorithm 2's WarmUp: seeds mu/sigma from the historical series using a
  // throwaway round processor; the engine's detection state is untouched
  // (detection restarts with O_0 = empty, line 2 of the pseudo-code).
  [[nodiscard]] Status WarmUp(const ts::MultivariateSeries& historical);

  // Runs one detection round on the window [start, start + window) of
  // `series` and feeds the decision through the assembler.
  // `window_start_time` / `window_end_time` place the window on the driver's
  // global time axis (batch: plan.start/end(r); streaming: samples_seen -
  // window / samples_seen).
  //
  // `workspace` optionally supplies the round's scratch arena (per-round
  // only, no cross-round state — see RoundWorkspace): the fleet's shared
  // worker pool passes pooled arenas so tenant engines stay workspace-less;
  // single-tenant drivers omit it and the processor lazily owns one.
  EngineRound Step(const ts::MultivariateSeries& series, int start,
                   int window_start_time, int window_end_time,
                   RoundWorkspace* workspace = nullptr) CAD_REALTIME_AUDITED;

  // Closes any anomaly still open after the last Step (and, like a normal
  // close, appends its rounds to CadOptions::flight_log_path when set).
  void Finish();

  int n_sensors() const { return n_sensors_; }
  int rounds() const { return round_index_; }
  double mu() const { return policy_.stats().mean(); }
  double sigma() const { return policy_.stats().stddev(); }
  bool anomaly_open() const { return assembler_.open(); }
  const std::vector<Anomaly>& anomalies() const {
    return assembler_.anomalies();
  }
  std::vector<Anomaly> TakeAnomalies() { return assembler_.TakeAnomalies(); }
  const DecisionPolicy& policy() const { return policy_; }
  const AnomalyAssembler& assembler() const { return assembler_; }
  const CoAppearanceTracker& tracker() const { return processor_.tracker(); }

  // Flight recorder (CadOptions::flight_log_capacity rounds of decision
  // provenance; disabled at capacity 0).
  const obs::FlightRecorder& recorder() const { return recorder_; }
  // Why round `round` fired (or stayed silent): its DecisionRecord plus the
  // delta against the previous round. nullopt when the round was never
  // recorded or has been evicted from the ring.
  std::optional<obs::DecisionProvenance> Explain(int round) const {
    return recorder_.Explain(round);
  }

 private:
  // Appends the rounds of anomalies_[first_new..] to flight_log_path.
  void DumpClosedAnomalies(size_t first_new);

  int n_sensors_;
  CadOptions options_;
  obs::PipelineMetrics metrics_;
  RoundProcessor processor_;
  DecisionPolicy policy_;
  AnomalyAssembler assembler_;
  obs::FlightRecorder recorder_;
  int round_index_ = 0;
};

}  // namespace cad::core

#endif  // CAD_CORE_ENGINE_H_
