// CadDetector: the batch driver of the CAD pipeline (paper Algorithm 2).
//
// The round loop, eta-sigma decision, mu/sigma update and anomaly assembly
// all live in core::DetectionEngine (engine.h); this driver walks a
// WindowPlan over the stored series, feeds each window to the engine, and
// derives the batch-only artifacts: per-round traces, per-time-point scores
// and labels, and latency summaries.
//
// Workflow:
//   1. Warm-up on a historical series T_his from the same source: runs
//      OutlierDetection rounds only to seed the running mean mu and standard
//      deviation sigma of the outlier-variation counts n_r.
//   2. Detection on T: for each round r, compute n_r (Algorithm 1); the
//      round is abnormal when |n_r - mu| >= eta * sigma (eta = 3 by default,
//      justified by Chebyshev's inequality via Theorem 1). Consecutive
//      abnormal rounds form one anomaly Z = (V_Z, R_Z) where V_Z is the
//      union of the rounds' outlier sets. Every n_r (abnormal or not) then
//      updates mu and sigma.
//
// Besides the anomaly list, the detector emits per-time-point scores and
// binary labels so CAD can be evaluated with the same threshold-based
// machinery (PA / DPA / VUS) as the baselines: round r's normalized
// deviation |n_r - mu| / (2 * eta * sigma), clamped to [0, 1], is assigned
// to the round's fresh time slice [end_r - s, end_r), so a 0.5 threshold on
// the score series reproduces the eta-sigma rule exactly.
#ifndef CAD_CORE_CAD_DETECTOR_H_
#define CAD_CORE_CAD_DETECTOR_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "core/cad_options.h"
#include "core/types.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "ts/multivariate_series.h"

namespace cad::core {

// Distribution of per-round detection latencies, measured per round (not a
// single overall division) so the tail is visible alongside the mean.
struct RoundLatencySummary {
  double mean = 0.0;  // seconds; == DetectionReport::seconds_per_round
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

struct DetectionReport {
  std::vector<Anomaly> anomalies;
  std::vector<RoundTrace> rounds;
  // Length |T|; score in [0, 1] per time point (0.5 == the eta-sigma rule).
  std::vector<double> point_scores;
  // Length |T|; 1 where an abnormal round's fresh slice covers the point.
  std::vector<uint8_t> point_labels;
  // Length n_sensors; 1 for sensors in any anomaly's V_Z.
  std::vector<uint8_t> sensor_labels;
  double warmup_seconds = 0.0;
  double detect_seconds = 0.0;
  // TPR of Table VII: the *mean* of the individually measured round
  // latencies (== round_latency.mean). Use round_latency.p50 for a
  // robust-to-outliers central value and p95/p99 for the tail.
  double seconds_per_round = 0.0;
  RoundLatencySummary round_latency;
  // State of the metrics registry (CadOptions::metrics_registry, the global
  // one by default) right after this run: cad_rounds_total, the
  // cad_round_seconds histogram, cad_tsg_edges_pruned, ... — see the
  // glossary in DESIGN.md "Observability". Counters are cumulative across
  // runs sharing a registry.
  obs::Snapshot telemetry;
  // The engine's flight-recorder ring at the end of the run, oldest round
  // first: the last CadOptions::flight_log_capacity rounds of decision
  // provenance (empty when recording is disabled). The deterministic fields
  // are byte-identical to what StreamingCad records for the same input.
  std::vector<obs::DecisionRecord> flight_log;
};

// Decision provenance for round `round`: its DecisionRecord from
// `report.flight_log` plus the delta against the previous round. nullopt
// when the round is not in the (ring-bounded) log.
std::optional<obs::DecisionProvenance> ExplainRound(
    const DetectionReport& report, int round);

class CadDetector {
 public:
  explicit CadDetector(const CadOptions& options) : options_(options) {}

  const CadOptions& options() const { return options_; }

  // Runs warm-up (optional: pass nullptr to skip, as the paper does on SMD)
  // followed by detection. Validates options against both series.
  [[nodiscard]] Result<DetectionReport> Detect(const ts::MultivariateSeries& series,
                                 const ts::MultivariateSeries* historical) const;

 private:
  CadOptions options_;
};

}  // namespace cad::core

#endif  // CAD_CORE_CAD_DETECTOR_H_
