// core::SampleWindow — the streaming ingest state extracted from
// StreamingCad so every online driver shares one implementation: a ring of
// the last `window` samples (sample-major) plus the round cadence rule of
// paper Section IV-F (a round closes every `step` samples once `window`
// samples have been seen).
//
// StreamingCad wraps one SampleWindow behind its mutex; fleet::FleetEngine
// keeps one per tenant behind the tenant lock. Neither copy of the ring
// logic exists anymore — StreamingCad is a thin single-tenant facade over
// exactly the ingest -> materialize -> DetectionEngine::Step path the fleet
// workers drive.
//
// Not synchronized; the owner provides the lock (both owners already hold
// one across every call). Append and MaterializeInto copy into storage sized
// at construction, so steady-state ingestion performs zero heap allocations.
#ifndef CAD_CORE_SAMPLE_WINDOW_H_
#define CAD_CORE_SAMPLE_WINDOW_H_

#include <algorithm>
#include <span>
#include <vector>

#include "ts/multivariate_series.h"

namespace cad::core {

class SampleWindow {
 public:
  SampleWindow(int n_sensors, int window, int step)
      : n_sensors_(n_sensors),
        window_(window),
        step_(step),
        buffer_(static_cast<size_t>(window) * n_sensors, 0.0) {}

  // Appends the readings of all sensors for one time point (the oldest ring
  // slot is overwritten once the ring is full) and returns true when this
  // sample closes a detection round: samples_seen >= window and the overhang
  // (samples_seen - window) is a multiple of step. `readings.size()` must
  // equal the sensor count.
  bool Append(std::span<const double> readings) {
    const int slot = (head_ + buffered_) % window_;
    std::copy(readings.begin(), readings.end(),
              buffer_.begin() + static_cast<size_t>(slot) * n_sensors_);
    if (buffered_ < window_) {
      ++buffered_;
    } else {
      head_ = (head_ + 1) % window_;
    }
    ++samples_seen_;
    return RoundReady();
  }

  // True when the most recent Append closed a round (see Append).
  bool RoundReady() const {
    if (samples_seen_ < window_) return false;
    return (samples_seen_ - window_) % step_ == 0;
  }

  // Materializes the ring into the sensor-major series the engine consumes
  // (`out` must be shaped n_sensors x window). Valid once samples_seen() >=
  // window.
  void MaterializeInto(ts::MultivariateSeries* out) const {
    for (int t = 0; t < window_; ++t) {
      const int slot = (head_ + t) % window_;
      const double* sample =
          buffer_.data() + static_cast<size_t>(slot) * n_sensors_;
      for (int i = 0; i < n_sensors_; ++i) out->set_value(i, t, sample[i]);
    }
  }

  // The window's position on the stream's global time axis:
  // [samples_seen - window, samples_seen).
  int window_start_time() const { return samples_seen_ - window_; }
  int window_end_time() const { return samples_seen_; }

  int samples_seen() const { return samples_seen_; }
  int n_sensors() const { return n_sensors_; }
  int window() const { return window_; }
  int step() const { return step_; }

 private:
  const int n_sensors_;
  const int window_;
  const int step_;
  std::vector<double> buffer_;  // ring, sample-major, never resized
  int head_ = 0;                // index of the oldest ring sample
  int buffered_ = 0;            // valid samples (<= window)
  int samples_seen_ = 0;
};

}  // namespace cad::core

#endif  // CAD_CORE_SAMPLE_WINDOW_H_
