// RoundProcessor: the stateful per-round OutlierDetection of the paper
// (Algorithm 1). Each call converts one window sub-matrix into a TSG,
// partitions it with Louvain, mines co-appearance against the previous
// round, derives the outlier set O_r (RC_{v,r} < theta) and the number of
// outlier variations n_r = |O_{r-1} symmetric-difference O_r|.
#ifndef CAD_CORE_ROUND_PROCESSOR_H_
#define CAD_CORE_ROUND_PROCESSOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include <memory>

#include "common/realtime.h"
#include "core/cad_options.h"
#include "core/co_appearance.h"
#include "graph/knn_graph.h"
#include "graph/louvain.h"
#include "obs/pipeline_metrics.h"
#include "obs/trace.h"
#include "stats/rolling_correlation.h"
#include "ts/multivariate_series.h"

namespace cad::core {

struct RoundOutput {
  std::vector<int> outliers;     // O_r, ascending vertex ids
  std::vector<int> entered;      // vertices that joined O_r this round
  // Subset of `entered` that also moved communities recently (within
  // rc_window rounds) in the sense of Definition 2: the vertex left the
  // plurality successor of its previous community, rather than merely being
  // abandoned by defecting peers. This is the attribution-grade signal for
  // V_Z; the full `entered` list still drives n_r.
  std::vector<int> entered_movers;
  std::vector<int> exited;       // vertices that left O_r this round
  int n_variations = 0;          // n_r (Definition 8)
  int n_communities = 0;         // c_r after Louvain
  int n_edges = 0;               // TSG size after tau pruning
  double modularity = 0.0;       // Newman modularity of this round's partition
  // Per-stage wall-clock cost of this round, mirroring the cad_*_seconds
  // histograms; consumed by the flight recorder's DecisionRecord timings.
  double correlation_seconds = 0.0;
  double knn_seconds = 0.0;
  double louvain_seconds = 0.0;
  double coappearance_seconds = 0.0;
  double round_seconds = 0.0;

  void Clear() {
    outliers.clear();
    entered.clear();
    entered_movers.clear();
    exited.clear();
    n_variations = 0;
    n_communities = 0;
    n_edges = 0;
    modularity = 0.0;
    correlation_seconds = 0.0;
    knn_seconds = 0.0;
    louvain_seconds = 0.0;
    coappearance_seconds = 0.0;
    round_seconds = 0.0;
  }
};

// Every buffer the round hot path reuses across rounds: the correlation
// matrix and its residual scratch, the TSG and kNN pick arrays, the Louvain
// partition and level scratch, plus the processor's own flag/vote buffers.
// All members have Clear()-and-reuse semantics — capacity grows to the
// problem size during the first rounds and steady-state rounds perform zero
// heap allocations (proved by the cad_round_allocs gauge and
// tests/core/engine_alloc_test.cc).
//
// A workspace is *per-round scratch*, not cross-round state: every member is
// rebuilt from scratch by the round that uses it, so one workspace may serve
// many processors in turn. fleet::WorkspacePool exploits exactly this — N
// tenant engines share ~n_workers workspaces per sensor-count bucket instead
// of owning one each, and the capacities converge to the bucket's high-water
// problem size after the warm phase (tests/fleet/fleet_engine_test.cc
// extends the allocation proof to the pooled path).
struct RoundWorkspace {
  stats::CorrelationMatrix correlation;
  stats::CorrelationScratch correlation_scratch;
  graph::Graph tsg;
  graph::KnnScratch knn;
  graph::Partition partition;
  graph::LouvainWorkspace louvain;
  std::vector<uint8_t> cur_flags;   // membership of O_r being built
  std::vector<int64_t> vote_keys;   // PluralitySuccessors (prev, cur) keys
  std::vector<int> successor;       // prev community -> plurality successor
  std::vector<int> successor_count;  // votes behind each successor entry
};

class RoundProcessor {
 public:
  RoundProcessor(int n_sensors, const CadOptions& options)
      : n_sensors_(n_sensors),
        options_(options),
        tracker_(n_sensors,
                 CoAppearanceOptions{
                     .normalization = options.rc_global_normalization
                                          ? RcNormalization::kGlobal
                                          : RcNormalization::kCommunity,
                     .window = options.rc_window}),
        outlier_flags_(n_sensors, 0),
        last_moved_round_(n_sensors, -1),
        metrics_(obs::PipelineMetrics::For(
            obs::ResolveRegistry(options.metrics_registry))),
        tracer_(&obs::ResolveTracer(options.tracer)) {}

  // Processes the window [start, start + options.window) of `series`.
  // Rounds must be fed in chronological order. The returned reference points
  // at the processor's reused output and stays valid until the next round.
  //
  // `workspace` selects the scratch arena for this round: nullptr uses the
  // processor's own lazily-created workspace (the single-tenant drivers);
  // fleet workers pass a pooled arena instead, so thousands of tenant
  // processors never own one each. The workspace carries no cross-round
  // state — see the RoundWorkspace comment above.
  const RoundOutput& ProcessWindow(const ts::MultivariateSeries& series,
                                   int start,
                                   RoundWorkspace* workspace = nullptr)
      CAD_REALTIME_AUDITED;

  // Same, but the caller supplies a pre-built correlation matrix (used by the
  // micro benches to isolate graph/community cost).
  const RoundOutput& ProcessCorrelation(const stats::CorrelationMatrix& corr,
                                        RoundWorkspace* workspace = nullptr)
      CAD_REALTIME_AUDITED;

  // Clears all cross-round state (communities, RC history, outlier set).
  void Reset();

  // Name of the per-round span emitted when tracing is enabled ("round" by
  // default). CadDetector names its warm-up processor's spans "warmup_round"
  // so detection round-span counts match DetectionReport::rounds.size().
  void set_span_name(std::string name) { span_name_ = std::move(name); }

  int rounds_processed() const { return rounds_processed_; }
  const std::vector<int>& last_communities() const { return prev_community_; }
  const CoAppearanceTracker& tracker() const { return tracker_; }

 private:
  // Phases 1-3 on a ready correlation matrix, inside the given round span.
  const RoundOutput& FinishRound(const stats::CorrelationMatrix& corr,
                                 obs::Span* round_span,
                                 RoundWorkspace* ws) CAD_REALTIME_AUDITED;

  // The round's arena: the caller-supplied one, else the lazily-created
  // owned workspace (kept out of the constructor so pooled-only processors
  // never pay for a private arena).
  RoundWorkspace* ResolveWorkspace(RoundWorkspace* workspace);

  int n_sensors_;
  CadOptions options_;
  CoAppearanceTracker tracker_;
  std::vector<int> prev_community_;  // empty before the first round
  std::vector<uint8_t> outlier_flags_;  // membership of O_{r-1}
  std::vector<int> last_moved_round_;   // -1 = never moved (Definition 2)
  // Lazily created when options_.incremental_correlation is set.
  std::unique_ptr<stats::RollingCorrelationTracker> rolling_;
  // Lazily created on the first round that does not bring its own workspace.
  std::unique_ptr<RoundWorkspace> owned_workspace_;
  RoundOutput out_;  // reused across rounds; returned by const reference
  int rounds_processed_ = 0;
  obs::PipelineMetrics metrics_;
  obs::Tracer* tracer_;
  std::string span_name_ = "round";
};

}  // namespace cad::core

#endif  // CAD_CORE_ROUND_PROCESSOR_H_
