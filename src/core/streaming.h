// StreamingCad: the online driver of CAD (paper Section IV-F).
//
// Samples arrive one time point at a time; whenever a full window closes
// (every `step` points once `window` points have been seen), the driver
// materializes the ring buffer into a reused window series and hands it to
// the shared core::DetectionEngine, which runs one OutlierDetection round,
// applies the eta-sigma rule with the current mu / sigma, and folds the
// round's n_r into the running statistics — so, as the paper notes, mu and
// sigma keep sharpening as the stream progresses. Per-round latency is what
// Table VII reports as TPR.
#ifndef CAD_CORE_STREAMING_H_
#define CAD_CORE_STREAMING_H_

#include <optional>
#include <span>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/cad_options.h"
#include "core/engine.h"
#include "core/types.h"
#include "ts/multivariate_series.h"

namespace cad::core {

// Emitted when a pushed sample completes a detection round.
struct StreamEvent {
  int round = 0;             // 0-based round index in the stream
  int time_index = 0;        // index of the sample that closed the round
  int n_variations = 0;      // n_r
  bool abnormal = false;
  std::vector<int> outliers;  // O_r
  std::vector<int> entered;   // vertices that joined O_r this round
  // Subset of `entered` that also moved communities recently (Definition 2)
  // — the attribution-grade V_Z signal, surfaced live with the same meaning
  // it has in batch anomaly assembly (see RoundOutput::entered_movers).
  std::vector<int> entered_movers;
  double mu = 0.0;            // statistics used for the decision
  double sigma = 0.0;
  // Wall-clock latency of this round (window materialization + Algorithm 1 +
  // decision) — the per-round TPR sample of Table VII, live.
  double round_seconds = 0.0;
};

// Internally synchronized: one producer may Push while other threads read
// the accessors (a telemetry poller, a query endpoint). All mutable state is
// GUARDED_BY(mu_), so under Clang's -Werror=thread-safety an unlocked access
// is a compile error; under TSan the same discipline is checked dynamically
// by tests/check/concurrency_stress_test.cc.
class StreamingCad {
 public:
  StreamingCad(int n_sensors, const CadOptions& options);

  // Seeds mu / sigma from a historical series, mirroring Algorithm 2's
  // WarmUp. Must be called before the first Push.
  [[nodiscard]] Status WarmUp(const ts::MultivariateSeries& historical) EXCLUDES(mu_);

  // Pushes the readings of all sensors for one time point. Returns an event
  // when this sample completes a round, std::nullopt otherwise. Calls from
  // multiple producers serialize on the internal mutex.
  [[nodiscard]] Result<std::optional<StreamEvent>> Push(std::span<const double> readings)
      EXCLUDES(mu_);

  // Anomalies fully closed so far (an anomaly closes when a normal round
  // follows abnormal ones). Returns a copy: a reference into guarded state
  // would dangle the moment the lock is released.
  std::vector<Anomaly> anomalies() const EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    return engine_.anomalies();
  }

  // True while the most recent rounds are abnormal and the anomaly is still
  // being assembled.
  bool anomaly_open() const EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    return engine_.anomaly_open();
  }

  int samples_seen() const EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    return samples_seen_;
  }
  int rounds_completed() const EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    return engine_.rounds();
  }
  double mu() const EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    return engine_.mu();
  }
  double sigma() const EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    return engine_.sigma();
  }

  // State of the metrics registry this stream records into
  // (CadOptions::metrics_registry, global by default): cad_rounds_total,
  // cad_stream_samples_total, the cad_round_seconds histogram, ... Snapshots
  // under the lock so the counters are consistent with a round boundary.
  obs::Snapshot TelemetrySnapshot() const EXCLUDES(mu_);

 private:
  bool RoundReady() const REQUIRES(mu_);
  StreamEvent RunRound() REQUIRES(mu_);

  const int n_sensors_;
  const CadOptions options_;
  const obs::PipelineMetrics metrics_;  // stable pointers, atomic recording

  mutable common::Mutex mu_;
  // The shared batch/streaming engine: round loop, decision, mu/sigma,
  // anomaly assembly (engine.h).
  DetectionEngine engine_ GUARDED_BY(mu_);

  // Ring buffer of the last `window` samples, sample-major, plus the reused
  // sensor-major window the engine consumes.
  std::vector<double> buffer_ GUARDED_BY(mu_);
  ts::MultivariateSeries window_ GUARDED_BY(mu_);
  int buffer_head_ GUARDED_BY(mu_) = 0;  // index of the oldest ring sample
  int buffered_ GUARDED_BY(mu_) = 0;     // number of valid samples (<= window)

  int samples_seen_ GUARDED_BY(mu_) = 0;
};

}  // namespace cad::core

#endif  // CAD_CORE_STREAMING_H_
