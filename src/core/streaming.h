// StreamingCad: the online driver of CAD (paper Section IV-F).
//
// Samples arrive one time point at a time; whenever a full window closes
// (every `step` points once `window` points have been seen), the driver
// materializes the ring buffer into a reused window series and hands it to
// the shared core::DetectionEngine, which runs one OutlierDetection round,
// applies the eta-sigma rule with the current mu / sigma, and folds the
// round's n_r into the running statistics — so, as the paper notes, mu and
// sigma keep sharpening as the stream progresses. Per-round latency is what
// Table VII reports as TPR.
#ifndef CAD_CORE_STREAMING_H_
#define CAD_CORE_STREAMING_H_

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/lock_order.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/cad_options.h"
#include "core/engine.h"
#include "core/sample_window.h"
#include "core/types.h"
#include "obs/exposition_server.h"
#include "ts/multivariate_series.h"

namespace cad::core {

// Emitted when a pushed sample completes a detection round.
struct StreamEvent {
  int round = 0;             // 0-based round index in the stream
  int time_index = 0;        // index of the sample that closed the round
  int n_variations = 0;      // n_r
  bool abnormal = false;
  std::vector<int> outliers;  // O_r
  std::vector<int> entered;   // vertices that joined O_r this round
  // Subset of `entered` that also moved communities recently (Definition 2)
  // — the attribution-grade V_Z signal, surfaced live with the same meaning
  // it has in batch anomaly assembly (see RoundOutput::entered_movers).
  std::vector<int> entered_movers;
  double mu = 0.0;            // statistics used for the decision
  double sigma = 0.0;
  // Wall-clock latency of this round (window materialization + Algorithm 1 +
  // decision) — the per-round TPR sample of Table VII, live.
  double round_seconds = 0.0;
};

// Liveness view of a stream, served as /healthz by the exposition server.
struct StreamHealth {
  int samples_seen = 0;
  int rounds = 0;
  bool anomaly_open = false;
  // Seconds since the last completed round on the steady clock; +inf before
  // the first round (and always +inf when recording is disabled).
  double last_round_age_seconds = 0.0;
  // Throughput over the rounds currently held by the flight recorder.
  double rounds_per_second = 0.0;
  int flight_ring_capacity = 0;  // 0 = flight recording disabled
  int flight_ring_size = 0;
};

// Internally synchronized: one producer may Push while other threads read
// the accessors (a telemetry poller, a query endpoint). All mutable state is
// GUARDED_BY(mu_), so under Clang's -Werror=thread-safety an unlocked access
// is a compile error; under TSan the same discipline is checked dynamically
// by tests/check/concurrency_stress_test.cc.
class StreamingCad {
 public:
  StreamingCad(int n_sensors, const CadOptions& options);

  // Seeds mu / sigma from a historical series, mirroring Algorithm 2's
  // WarmUp. Must be called before the first Push.
  [[nodiscard]] Status WarmUp(const ts::MultivariateSeries& historical) EXCLUDES(mu_);

  // Pushes the readings of all sensors for one time point. Returns an event
  // when this sample completes a round, std::nullopt otherwise. Calls from
  // multiple producers serialize on the internal mutex.
  //
  // Allocates the event's vectors afresh each round; steady-state callers
  // (the bench harness, fleet-style drivers) should use the reusing overload
  // below instead.
  [[nodiscard]] Result<std::optional<StreamEvent>> Push(std::span<const double> readings)
      EXCLUDES(mu_);

  // Allocation-free form: fills `*event` in place when this sample completes
  // a round (returning true), reusing the event's vector capacity across
  // rounds — after a few warm rounds a Push performs zero heap allocations
  // end to end, matching the engine's own contract (the cad_round_allocs
  // gauge). The event is untouched when no round completed (false).
  [[nodiscard]] Result<bool> Push(std::span<const double> readings,
                                  StreamEvent* event) EXCLUDES(mu_);

  // Anomalies fully closed so far (an anomaly closes when a normal round
  // follows abnormal ones). Returns a copy: a reference into guarded state
  // would dangle the moment the lock is released.
  std::vector<Anomaly> anomalies() const EXCLUDES(mu_) {
    // cad-lint: allow(CL007) name-resolution over-approximation: the engine's `.anomalies()` is DetectionEngine::anomalies, not this driver API, which is never called from inside Step
    common::MutexLock lock(mu_);
    return engine_.anomalies();
  }

  // True while the most recent rounds are abnormal and the anomaly is still
  // being assembled.
  bool anomaly_open() const EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    return engine_.anomaly_open();
  }

  int samples_seen() const EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    return ingest_.samples_seen();
  }
  int rounds_completed() const EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    return engine_.rounds();
  }
  double mu() const EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    return engine_.mu();
  }
  double sigma() const EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    return engine_.sigma();
  }

  // State of the metrics registry this stream records into
  // (CadOptions::metrics_registry, global by default): cad_rounds_total,
  // cad_stream_samples_total, the cad_round_seconds histogram, ... Snapshots
  // under the lock so the counters are consistent with a round boundary.
  obs::Snapshot TelemetrySnapshot() const EXCLUDES(mu_);

  // Decision provenance for round `round` from the engine's flight recorder
  // (record + delta vs the previous round); nullopt when recording is
  // disabled or the round left the ring. Copies under the lock.
  std::optional<obs::DecisionProvenance> Explain(int round) const
      EXCLUDES(mu_);

  // The whole flight-recorder ring, oldest round first, one JSON object per
  // line; empty when recording is disabled.
  std::string DumpFlightLogJsonl() const EXCLUDES(mu_);

  // Snapshot of the flight-recorder ring, oldest round first; empty when
  // recording is disabled. Copies under the lock — feed the result to
  // advisor::Advise for structured triage instead of reparsing AdviseJson.
  [[nodiscard]] std::vector<obs::DecisionRecord> FlightLog() const
      EXCLUDES(mu_);

  // Root-cause advice (advisor::AdviceReportToJson) over the inclusive round
  // range [from_round, to_round] of the flight-recorder ring; -1 = unbounded
  // on that side. Empty string when the range selects no recorded rounds —
  // the /advise handler turns that into a 404. Copies the ring under the
  // lock, then scores outside it so Push is never blocked by triage.
  [[nodiscard]] std::string AdviseJson(int from_round, int to_round) const
      EXCLUDES(mu_);

  // Liveness snapshot (the /healthz payload).
  StreamHealth Health() const EXCLUDES(mu_);

  // Port the exposition server is listening on (the resolved ephemeral port
  // when CadOptions::exposition_port was 0), or -1 when no server is running
  // (not requested, or it failed to bind — the failure is logged to stderr).
  int exposition_port() const {
    return server_ != nullptr ? server_->port() : -1;
  }

 private:
  static std::unique_ptr<obs::ExpositionServer> MakeServer(StreamingCad* self);

  void RunRound(StreamEvent* event) REQUIRES(mu_);
  std::string HealthJson() const EXCLUDES(mu_);
  std::string ExplainJson(int round) const EXCLUDES(mu_);

  const int n_sensors_;
  const CadOptions options_;
  const obs::PipelineMetrics metrics_;  // stable pointers, atomic recording

  // Rank 20 in the global hierarchy (common/lock_order.h): held across a
  // round, which records telemetry (Registry::mu_, rank 30) and spans
  // (Tracer::mu_, rank 31) — so those must rank strictly above this lock.
  mutable common::Mutex mu_{common::lock_order::kStreamingCad,
                            "StreamingCad::mu_"};
  // The shared batch/streaming engine: round loop, decision, mu/sigma,
  // anomaly assembly (engine.h).
  DetectionEngine engine_ GUARDED_BY(mu_);

  // The extracted ingest state (ring buffer + round cadence) shared with the
  // fleet's per-tenant path, plus the reused sensor-major window the engine
  // consumes — this driver is a thin single-tenant facade over the same
  // ingest -> materialize -> engine.Step path fleet::FleetEngine drives.
  SampleWindow ingest_ GUARDED_BY(mu_);
  ts::MultivariateSeries window_ GUARDED_BY(mu_);

  // Declared last so it is destroyed first: the destructor joins the server
  // thread, whose handlers lock mu_ and read the guarded state above — both
  // must still be alive until the join returns. const (never reassigned, no
  // lock needed), built by MakeServer; nullptr unless
  // CadOptions::exposition_port >= 0.
  const std::unique_ptr<obs::ExpositionServer> server_;
};

}  // namespace cad::core

#endif  // CAD_CORE_STREAMING_H_
