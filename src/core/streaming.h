// StreamingCad: the online generalization of CAD (paper Section IV-F).
//
// Samples arrive one time point at a time; whenever a full window closes
// (every `step` points once `window` points have been seen), the detector
// runs one OutlierDetection round, applies the eta-sigma rule with the
// current mu / sigma, and then folds the round's n_r into the running
// statistics — so, as the paper notes, mu and sigma keep sharpening as the
// stream progresses. Per-round latency is what Table VII reports as TPR.
#ifndef CAD_CORE_STREAMING_H_
#define CAD_CORE_STREAMING_H_

#include <optional>
#include <span>
#include <vector>

#include "core/cad_detector.h"
#include "core/cad_options.h"
#include "core/round_processor.h"
#include "stats/running_stats.h"
#include "ts/multivariate_series.h"

namespace cad::core {

// Emitted when a pushed sample completes a detection round.
struct StreamEvent {
  int round = 0;             // 0-based round index in the stream
  int time_index = 0;        // index of the sample that closed the round
  int n_variations = 0;      // n_r
  bool abnormal = false;
  std::vector<int> outliers;  // O_r
  std::vector<int> entered;   // vertices that joined O_r this round
  double mu = 0.0;            // statistics used for the decision
  double sigma = 0.0;
  // Wall-clock latency of this round (window materialization + Algorithm 1 +
  // decision) — the per-round TPR sample of Table VII, live.
  double round_seconds = 0.0;
};

class StreamingCad {
 public:
  StreamingCad(int n_sensors, const CadOptions& options);

  // Seeds mu / sigma from a historical series, mirroring Algorithm 2's
  // WarmUp. Must be called before the first Push.
  Status WarmUp(const ts::MultivariateSeries& historical);

  // Pushes the readings of all sensors for one time point. Returns an event
  // when this sample completes a round, std::nullopt otherwise.
  Result<std::optional<StreamEvent>> Push(std::span<const double> readings);

  // Anomalies fully closed so far (an anomaly closes when a normal round
  // follows abnormal ones).
  const std::vector<Anomaly>& anomalies() const { return anomalies_; }

  // True while the most recent rounds are abnormal and the anomaly is still
  // being assembled.
  bool anomaly_open() const { return open_first_round_ >= 0; }

  int samples_seen() const { return samples_seen_; }
  int rounds_completed() const { return rounds_completed_; }
  double mu() const { return variation_stats_.mean(); }
  double sigma() const { return variation_stats_.stddev(); }

  // State of the metrics registry this stream records into
  // (CadOptions::metrics_registry, global by default): cad_rounds_total,
  // cad_stream_samples_total, the cad_round_seconds histogram, ...
  obs::Snapshot TelemetrySnapshot() const;

 private:
  bool RoundReady() const;
  StreamEvent RunRound();

  int n_sensors_;
  CadOptions options_;
  RoundProcessor processor_;
  stats::RunningStats variation_stats_;
  obs::PipelineMetrics metrics_;

  // Ring buffer of the last `window` samples, sample-major.
  std::vector<double> buffer_;
  int buffer_head_ = 0;  // index of the oldest sample in the ring
  int buffered_ = 0;     // number of valid samples (<= window)

  int samples_seen_ = 0;
  int rounds_completed_ = 0;
  bool warmed_up_ = false;

  // Anomaly assembly, as in CadDetector.
  std::vector<Anomaly> anomalies_;
  std::vector<int> open_sensors_;
  std::vector<int> open_movers_;
  std::vector<uint8_t> open_sensor_flags_;
  int open_first_round_ = -1;
  int open_start_time_ = 0;
  int open_detection_time_ = 0;
};

}  // namespace cad::core

#endif  // CAD_CORE_STREAMING_H_
