// StreamingCad: the online generalization of CAD (paper Section IV-F).
//
// Samples arrive one time point at a time; whenever a full window closes
// (every `step` points once `window` points have been seen), the detector
// runs one OutlierDetection round, applies the eta-sigma rule with the
// current mu / sigma, and then folds the round's n_r into the running
// statistics — so, as the paper notes, mu and sigma keep sharpening as the
// stream progresses. Per-round latency is what Table VII reports as TPR.
#ifndef CAD_CORE_STREAMING_H_
#define CAD_CORE_STREAMING_H_

#include <optional>
#include <span>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/cad_detector.h"
#include "core/cad_options.h"
#include "core/round_processor.h"
#include "stats/running_stats.h"
#include "ts/multivariate_series.h"

namespace cad::core {

// Emitted when a pushed sample completes a detection round.
struct StreamEvent {
  int round = 0;             // 0-based round index in the stream
  int time_index = 0;        // index of the sample that closed the round
  int n_variations = 0;      // n_r
  bool abnormal = false;
  std::vector<int> outliers;  // O_r
  std::vector<int> entered;   // vertices that joined O_r this round
  double mu = 0.0;            // statistics used for the decision
  double sigma = 0.0;
  // Wall-clock latency of this round (window materialization + Algorithm 1 +
  // decision) — the per-round TPR sample of Table VII, live.
  double round_seconds = 0.0;
};

// Internally synchronized: one producer may Push while other threads read
// the accessors (a telemetry poller, a query endpoint). All mutable state is
// GUARDED_BY(mu_), so under Clang's -Werror=thread-safety an unlocked access
// is a compile error; under TSan the same discipline is checked dynamically
// by tests/check/concurrency_stress_test.cc.
class StreamingCad {
 public:
  StreamingCad(int n_sensors, const CadOptions& options);

  // Seeds mu / sigma from a historical series, mirroring Algorithm 2's
  // WarmUp. Must be called before the first Push.
  [[nodiscard]] Status WarmUp(const ts::MultivariateSeries& historical) EXCLUDES(mu_);

  // Pushes the readings of all sensors for one time point. Returns an event
  // when this sample completes a round, std::nullopt otherwise. Calls from
  // multiple producers serialize on the internal mutex.
  [[nodiscard]] Result<std::optional<StreamEvent>> Push(std::span<const double> readings)
      EXCLUDES(mu_);

  // Anomalies fully closed so far (an anomaly closes when a normal round
  // follows abnormal ones). Returns a copy: a reference into guarded state
  // would dangle the moment the lock is released.
  std::vector<Anomaly> anomalies() const EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    return anomalies_;
  }

  // True while the most recent rounds are abnormal and the anomaly is still
  // being assembled.
  bool anomaly_open() const EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    return open_first_round_ >= 0;
  }

  int samples_seen() const EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    return samples_seen_;
  }
  int rounds_completed() const EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    return rounds_completed_;
  }
  double mu() const EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    return variation_stats_.mean();
  }
  double sigma() const EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    return variation_stats_.stddev();
  }

  // State of the metrics registry this stream records into
  // (CadOptions::metrics_registry, global by default): cad_rounds_total,
  // cad_stream_samples_total, the cad_round_seconds histogram, ...
  obs::Snapshot TelemetrySnapshot() const;

 private:
  bool RoundReady() const REQUIRES(mu_);
  StreamEvent RunRound() REQUIRES(mu_);

  const int n_sensors_;
  const CadOptions options_;
  const obs::PipelineMetrics metrics_;  // stable pointers, atomic recording

  mutable common::Mutex mu_;
  RoundProcessor processor_ GUARDED_BY(mu_);
  stats::RunningStats variation_stats_ GUARDED_BY(mu_);

  // Ring buffer of the last `window` samples, sample-major.
  std::vector<double> buffer_ GUARDED_BY(mu_);
  int buffer_head_ GUARDED_BY(mu_) = 0;  // index of the oldest ring sample
  int buffered_ GUARDED_BY(mu_) = 0;     // number of valid samples (<= window)

  int samples_seen_ GUARDED_BY(mu_) = 0;
  int rounds_completed_ GUARDED_BY(mu_) = 0;
  bool warmed_up_ GUARDED_BY(mu_) = false;

  // Anomaly assembly, as in CadDetector.
  std::vector<Anomaly> anomalies_ GUARDED_BY(mu_);
  std::vector<int> open_sensors_ GUARDED_BY(mu_);
  std::vector<int> open_movers_ GUARDED_BY(mu_);
  std::vector<uint8_t> open_sensor_flags_ GUARDED_BY(mu_);
  int open_first_round_ GUARDED_BY(mu_) = -1;
  int open_start_time_ GUARDED_BY(mu_) = 0;
  int open_detection_time_ GUARDED_BY(mu_) = 0;
};

}  // namespace cad::core

#endif  // CAD_CORE_STREAMING_H_
