// Co-appearance mining (paper Section IV-C, Definitions 4-7).
//
// Two vertices co-appear in round r when they share a community in both
// round r-1 and round r. S_r(v) counts v's co-appeared vertices (Definition
// 5); the Ratio of Co-appearance number RC_{v,r} (Definition 6) averages a
// normalized S_i(v) over recent transitions, and a vertex is an outlier in
// round r when RC_{v,r} < theta (Definition 7).
//
// Two deliberate refinements over a literal reading of Equation 3, both
// needed to reproduce the behaviour the paper *describes* ("RC will drop
// drastically" when a vertex defects) across graphs of any scale; both are
// switchable back to the literal form for ablation (DESIGN.md §4.3):
//
//  1. Normalization. Eq. 3 divides S_i(v) by (n - 1), so a perfectly stable
//     vertex in a community of m sensors has RC = (m-1)/(n-1) — which falls
//     below any fixed theta once the graph has more than a few communities
//     (e.g. ~0.05 for IS-5's 20 communities), making every vertex an
//     "outlier" forever and silencing the variation signal. kCommunity
//     normalizes by the vertex's own previous community size minus one (the
//     maximum achievable co-appearance), so stable vertices sit at 1.0 and
//     a fixed theta carries the same meaning at every n (the paper's 0.3 —
//     placed just below its stable level — maps to ~0.9 here, see
//     cad_options.h). Vertices coming from singleton communities have
//     nobody to co-appear with and get ratio 0, exactly as Eq. 3's S = 0
//     gives; persistent isolates become persistent outliers, which is
//     harmless since only outlier-set transitions feed n_r.
//
//  2. Windowing. Eq. 3's prefix average over all r rounds cannot "drop
//     drastically": after a long stable history one defection moves the
//     average by ~1/r. RC here averages over the last `window` transitions
//     (window = 0 recovers the full-history prefix average), so a defection
//     pulls RC below theta within a few rounds — the early-detection
//     property Section IV-C claims.
#ifndef CAD_CORE_CO_APPEARANCE_H_
#define CAD_CORE_CO_APPEARANCE_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/realtime.h"
#include "common/status.h"

namespace cad::core {

// Counts, for every vertex, how many other vertices kept the same
// (previous-community, current-community) pair — an O(n) grouping instead of
// the naive O(n^2) pairwise check (Definitions 4 and 5).
std::vector<int> CoAppearanceNumbers(const std::vector<int>& prev_community,
                                     const std::vector<int>& cur_community);

enum class RcNormalization {
  // S_r(v) / (|C_{r-1}(v)| - 1): stability relative to the vertex's own
  // community (default; see header comment).
  kCommunity,
  // S_r(v) / (n - 1): the literal Equation 3 (ablation mode).
  kGlobal,
};

struct CoAppearanceOptions {
  RcNormalization normalization = RcNormalization::kCommunity;
  // Number of most recent transitions averaged into RC; 0 = full history
  // (the literal prefix average of Equation 3).
  int window = 8;
};

// Tracks normalized co-appearance across rounds and exposes RC_{v,r}.
//
// History is a flat n x window ring of ratios (all vertices share the same
// transition count, so one write cursor serves every vertex) and the group
// counting inside Observe is sort-based — after the buffers reach capacity
// on the first few rounds, Observe never touches the heap.
class CoAppearanceTracker {
 public:
  explicit CoAppearanceTracker(int n_vertices,
                               const CoAppearanceOptions& options = {})
      : n_vertices_(n_vertices),
        options_(options),
        sums_(n_vertices, 0.0),
        ring_(options.window > 0
                  ? static_cast<size_t>(n_vertices) * options.window
                  : 0,
              0.0) {}

  // Feeds the transition from the previous round's communities to the
  // current round's and returns this round's S_r(v) per vertex. The
  // reference stays valid until the next Observe or Reset.
  const std::vector<int>& Observe(const std::vector<int>& prev_community,
                                  const std::vector<int>& cur_community)
      CAD_REALTIME_AUDITED;

  // RC_{v,r} over the windowed transitions observed so far; 1.0 before any
  // transition (no evidence of instability yet).
  double ratio(int v) const CAD_REALTIME {
    const int size = history_size(v);
    if (size == 0) return 1.0;
    // The windowed sum slides by add/subtract, so it carries O(eps) drift
    // even though every member ratio is in [0, 1]; the clamp restores the
    // documented RC range (check/validators.h asserts it).
    const double rc = sums_[v] / static_cast<double>(size);
    return std::clamp(rc, 0.0, 1.0);
  }

  int transitions() const { return transitions_; }
  int n_vertices() const { return n_vertices_; }
  // Windowed transitions currently retained for v (<= options.window and
  // <= transitions()); exposed for the check/validators.h invariants. Every
  // vertex observes every transition, so the count is vertex-independent.
  int history_size(int v) const CAD_REALTIME {
    (void)v;
    return options_.window > 0 ? std::min(transitions_, options_.window)
                               : transitions_;
  }

  void Reset() {
    std::fill(sums_.begin(), sums_.end(), 0.0);
    std::fill(ring_.begin(), ring_.end(), 0.0);
    transitions_ = 0;
  }

 private:
  int n_vertices_;
  CoAppearanceOptions options_;
  std::vector<double> sums_;  // windowed sum of ratios
  std::vector<double> ring_;  // n x window recent ratios (window > 0 only)
  int transitions_ = 0;
  // Observe scratch, capacity retained across rounds.
  std::vector<int> s_;
  std::vector<int64_t> keys_;
  std::vector<int64_t> sorted_keys_;
  std::vector<int> prev_size_;
};

}  // namespace cad::core

#endif  // CAD_CORE_CO_APPEARANCE_H_
