#include "core/cad_detector.h"

#include <algorithm>
#include <utility>

#include "check/check.h"
#include "check/validators.h"
#include "common/stopwatch.h"
#include "core/engine.h"
#include "obs/trace.h"
#include "ts/window.h"

namespace cad::core {

namespace {

// Exact empirical quantile of the measured per-round latencies (nearest-rank
// on the sorted sample; unlike the registry histogram this has no bucket
// resolution limit).
double SampleQuantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

RoundLatencySummary SummarizeRoundLatencies(std::vector<double> seconds) {
  RoundLatencySummary summary;
  if (seconds.empty()) return summary;
  double sum = 0.0;
  for (double s : seconds) sum += s;
  summary.mean = sum / static_cast<double>(seconds.size());
  std::sort(seconds.begin(), seconds.end());
  summary.p50 = SampleQuantile(seconds, 0.50);
  summary.p95 = SampleQuantile(seconds, 0.95);
  summary.p99 = SampleQuantile(seconds, 0.99);
  return summary;
}

}  // namespace

std::optional<obs::DecisionProvenance> ExplainRound(
    const DetectionReport& report, int round) {
  const obs::DecisionRecord* record = nullptr;
  const obs::DecisionRecord* previous = nullptr;
  for (const obs::DecisionRecord& candidate : report.flight_log) {
    if (candidate.round == round) record = &candidate;
    if (candidate.round == round - 1) previous = &candidate;
  }
  if (record == nullptr) return std::nullopt;
  return obs::MakeProvenance(*record, previous);
}

Result<DetectionReport> CadDetector::Detect(
    const ts::MultivariateSeries& series,
    const ts::MultivariateSeries* historical) const {
  CAD_RETURN_NOT_OK(options_.Validate(series.length()));
  if (historical != nullptr) {
    CAD_RETURN_NOT_OK(options_.Validate(historical->length()));
    if (historical->n_sensors() != series.n_sensors()) {
      return Status::InvalidArgument(
          "historical series has a different sensor count");
    }
  }

  const int n = series.n_sensors();
  DetectionReport report;

  obs::Tracer& tracer = obs::ResolveTracer(options_.tracer);
  obs::Registry& registry = obs::ResolveRegistry(options_.metrics_registry);

  DetectionEngine engine(n, options_);

  // --- Warm-up (Algorithm 2, WarmUp): outlier detection only, no anomaly
  // decisions; every n_r seeds mu and sigma.
  if (historical != nullptr) {
    ScopedTimer warmup_timer(&report.warmup_seconds);
    CAD_RETURN_NOT_OK(engine.WarmUp(*historical));
  }

  // --- Detection (Algorithm 2, main loop). Engine state starts with
  // O_0 = empty, exactly as line 2 of the pseudo-code.
  Result<ts::WindowPlan> plan_result =
      ts::WindowPlan::Make(series.length(), options_.window, options_.step);
  if (!plan_result.ok()) return plan_result.status();
  const ts::WindowPlan& plan = plan_result.value();

  report.point_scores.assign(series.length(), 0.0);
  report.point_labels.assign(series.length(), 0);
  report.sensor_labels.assign(n, 0);
  report.rounds.reserve(plan.rounds());

  std::vector<double> round_seconds;
  round_seconds.reserve(plan.rounds());
  {
    // Scoped so the timer lands in `report` before it moves into the Result.
    obs::Span detect_span(tracer, "detect");
    ScopedTimer detect_timer(&report.detect_seconds);
    for (int r = 0; r < plan.rounds(); ++r) {
      Stopwatch round_watch;
      const EngineRound round =
          engine.Step(series, plan.start(r), plan.start(r), plan.end(r));

      RoundTrace trace;
      trace.round = r;
      trace.start_time = plan.start(r);
      trace.n_variations = round.output->n_variations;
      trace.n_outliers = static_cast<int>(round.output->outliers.size());
      trace.n_communities = round.output->n_communities;
      trace.n_edges = round.output->n_edges;
      trace.mu = round.mu;
      trace.sigma = round.sigma;
      trace.abnormal = round.abnormal;

      // Time-domain footprint of this round: the trailing fraction of the
      // window (cad_options.h window_mark_fraction).
      const int marked = std::max(
          options_.step,
          static_cast<int>(options_.window * options_.window_mark_fraction));
      const int slice_begin = r == 0 ? plan.start(r)
                                     : std::max(plan.start(r),
                                                plan.end(r) - marked);
      for (int t = slice_begin; t < plan.end(r); ++t) {
        report.point_scores[t] = std::max(report.point_scores[t], round.score);
        if (round.abnormal) report.point_labels[t] = 1;
      }

      report.rounds.push_back(trace);
      round_seconds.push_back(round_watch.ElapsedSeconds());
    }
    engine.Finish();
  }

  report.anomalies = engine.TakeAnomalies();
  for (const Anomaly& anomaly : report.anomalies) {
    for (int v : anomaly.sensors) report.sensor_labels[v] = 1;
  }

  report.round_latency = SummarizeRoundLatencies(std::move(round_seconds));
  report.seconds_per_round = report.round_latency.mean;
  report.telemetry = registry.TakeSnapshot();
  report.flight_log = engine.recorder().Records();
  // Stage-boundary contract (CAD_CHECK_LEVEL=full only): the 3-sigma state
  // and the assembled report must be structurally sound before they leave
  // the detector.
  CAD_VALIDATE(check::ValidateRunningStats(engine.policy().stats(),
                                           options_.metrics_registry));
  CAD_VALIDATE(check::ValidateReport(report, n, options_.metrics_registry));
  return report;
}

}  // namespace cad::core
