#include "core/cad_detector.h"

#include <algorithm>
#include <cmath>

#include "check/check.h"
#include "check/validators.h"
#include "common/stopwatch.h"
#include "obs/pipeline_metrics.h"
#include "obs/trace.h"

namespace cad::core {

namespace {

// Exact empirical quantile of the measured per-round latencies (nearest-rank
// on the sorted sample; unlike the registry histogram this has no bucket
// resolution limit).
double SampleQuantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

RoundLatencySummary SummarizeRoundLatencies(std::vector<double> seconds) {
  RoundLatencySummary summary;
  if (seconds.empty()) return summary;
  double sum = 0.0;
  for (double s : seconds) sum += s;
  summary.mean = sum / static_cast<double>(seconds.size());
  std::sort(seconds.begin(), seconds.end());
  summary.p50 = SampleQuantile(seconds, 0.50);
  summary.p95 = SampleQuantile(seconds, 0.95);
  summary.p99 = SampleQuantile(seconds, 0.99);
  return summary;
}

// Threshold on |n_r - mu|. A zero sigma would make the >= comparison fire on
// every round including n_r == mu; the tiny floor keeps the faithful "any
// deviation from mu is abnormal" semantics in that degenerate case.
double DeviationThreshold(const CadOptions& options, double sigma) {
  const double s = std::max(sigma, options.min_sigma);
  return std::max(options.eta * s, 1e-9);
}

}  // namespace

Result<DetectionReport> CadDetector::Detect(
    const ts::MultivariateSeries& series,
    const ts::MultivariateSeries* historical) const {
  CAD_RETURN_NOT_OK(options_.Validate(series.length()));
  if (historical != nullptr) {
    CAD_RETURN_NOT_OK(options_.Validate(historical->length()));
    if (historical->n_sensors() != series.n_sensors()) {
      return Status::InvalidArgument(
          "historical series has a different sensor count");
    }
  }

  const int n = series.n_sensors();
  DetectionReport report;
  stats::RunningStats variation_stats;  // the series N of Algorithm 2

  obs::Tracer& tracer = obs::ResolveTracer(options_.tracer);
  obs::Registry& registry = obs::ResolveRegistry(options_.metrics_registry);
  obs::PipelineMetrics metrics = obs::PipelineMetrics::For(registry);

  // --- Warm-up (Algorithm 2, WarmUp): outlier detection only, no anomaly
  // decisions; every n_r seeds mu and sigma.
  if (historical != nullptr) {
    obs::Span warmup_span(tracer, "warmup");
    ScopedTimer warmup_timer(&report.warmup_seconds);
    Result<ts::WindowPlan> plan = ts::WindowPlan::Make(
        historical->length(), options_.window, options_.step);
    if (!plan.ok()) return plan.status();
    RoundProcessor processor(n, options_);
    // Distinguish warm-up rounds from detection rounds in the trace: only
    // "round" spans correspond to DetectionReport::rounds entries.
    processor.set_span_name("warmup_round");
    const int warmup_burn_in = options_.EffectiveBurnIn();
    for (int r = 0; r < plan.value().rounds(); ++r) {
      RoundOutput round = processor.ProcessWindow(*historical,
                                                  plan.value().start(r));
      // Cold-start rounds are artifacts of the empty outlier state, not data.
      if (r >= warmup_burn_in) variation_stats.Add(round.n_variations);
    }
  }

  // --- Detection (Algorithm 2, main loop). Processor state restarts with
  // O_0 = empty, exactly as line 2 of the pseudo-code.
  Result<ts::WindowPlan> plan_result =
      ts::WindowPlan::Make(series.length(), options_.window, options_.step);
  if (!plan_result.ok()) return plan_result.status();
  const ts::WindowPlan& plan = plan_result.value();

  report.point_scores.assign(series.length(), 0.0);
  report.point_labels.assign(series.length(), 0);
  report.sensor_labels.assign(n, 0);
  report.rounds.reserve(plan.rounds());

  RoundProcessor processor(n, options_);
  std::vector<int> open_sensors;  // entered outliers while the anomaly is open
  std::vector<int> open_movers;   // ... that also moved (Definition 2)
  std::vector<uint8_t> open_sensor_flags(n, 0);
  int open_first_round = -1;

  auto close_anomaly = [&](int last_round) {
    Anomaly anomaly;
    // Attribution (V_Z): prefer vertices that moved communities themselves
    // (Definition 2) over peers merely abandoned by defectors; then keep the
    // ones whose RC is still depressed at close time — defectors stay low,
    // grazed peers have already recovered (cad_options.h).
    const std::vector<int>& candidates =
        !open_movers.empty() ? open_movers : open_sensors;
    const double cut = options_.EffectiveAttributionCut();
    for (int v : candidates) {
      if (processor.tracker().ratio(v) < cut) anomaly.sensors.push_back(v);
    }
    if (anomaly.sensors.empty()) anomaly.sensors = candidates;
    std::sort(anomaly.sensors.begin(), anomaly.sensors.end());
    anomaly.sensors.erase(
        std::unique(anomaly.sensors.begin(), anomaly.sensors.end()),
        anomaly.sensors.end());
    anomaly.first_round = open_first_round;
    anomaly.last_round = last_round;
    anomaly.start_time = plan.start(open_first_round);
    anomaly.end_time = plan.end(last_round);
    anomaly.detection_time = plan.end(open_first_round) - 1;
    for (int v : anomaly.sensors) report.sensor_labels[v] = 1;
    metrics.anomalies_total->Increment();
    report.anomalies.push_back(std::move(anomaly));
    open_sensors.clear();
    open_movers.clear();
    std::fill(open_sensor_flags.begin(), open_sensor_flags.end(), 0);
    open_first_round = -1;
  };

  std::vector<double> round_seconds;
  round_seconds.reserve(plan.rounds());
  {
    // Scoped so the timer lands in `report` before it moves into the Result.
    obs::Span detect_span(tracer, "detect");
    ScopedTimer detect_timer(&report.detect_seconds);
    for (int r = 0; r < plan.rounds(); ++r) {
      Stopwatch round_watch;
      RoundOutput round = processor.ProcessWindow(series, plan.start(r));

      RoundTrace trace;
      trace.round = r;
      trace.start_time = plan.start(r);
      trace.n_variations = round.n_variations;
      trace.n_outliers = static_cast<int>(round.outliers.size());
      trace.n_communities = round.n_communities;
      trace.n_edges = round.n_edges;
      trace.mu = variation_stats.mean();
      trace.sigma = variation_stats.stddev();

      // Round 0 has no preceding round (the paper's r > 1 guard) and burn-in
      // rounds carry cold-start artifacts; neither can be judged abnormal.
      // Without warm-up the first rounds also have no mu yet.
      const int burn_in = options_.EffectiveBurnIn();
      bool abnormal = false;
      double score = 0.0;
      if (r > 0 && r >= burn_in && variation_stats.count() > 0) {
        const double deviation = std::abs(round.n_variations - trace.mu);
        if (options_.use_sigma_rule) {
          const double threshold = DeviationThreshold(options_, trace.sigma);
          abnormal = deviation >= threshold;
          score = std::min(1.0, 0.5 * deviation / threshold);
        } else {
          abnormal = round.n_variations >= options_.fixed_xi;
          score = std::min(
              1.0, 0.5 * round.n_variations / static_cast<double>(options_.fixed_xi));
        }
      }
      trace.abnormal = abnormal;

      if (abnormal) {
        if (open_first_round < 0) open_first_round = r;
        // Candidates are the vertices newly turned outlier: pre-existing
        // outliers are background isolates, not sensors this anomaly affected.
        for (int v : round.entered) {
          if (!open_sensor_flags[v]) {
            open_sensor_flags[v] = 1;
            open_sensors.push_back(v);
          }
        }
        for (int v : round.entered_movers) open_movers.push_back(v);
      } else if (open_first_round >= 0) {
        close_anomaly(r - 1);
      }

      // Time-domain footprint of this round: the trailing fraction of the
      // window (cad_options.h window_mark_fraction).
      const int marked = std::max(
          options_.step,
          static_cast<int>(options_.window * options_.window_mark_fraction));
      const int slice_begin = r == 0 ? plan.start(r)
                                     : std::max(plan.start(r),
                                                plan.end(r) - marked);
      for (int t = slice_begin; t < plan.end(r); ++t) {
        report.point_scores[t] = std::max(report.point_scores[t], score);
        if (abnormal) report.point_labels[t] = 1;
      }

      if (abnormal) metrics.abnormal_rounds_total->Increment();
      if (r >= burn_in) variation_stats.Add(round.n_variations);
      report.rounds.push_back(trace);
      round_seconds.push_back(round_watch.ElapsedSeconds());
    }
    if (open_first_round >= 0) close_anomaly(plan.rounds() - 1);
  }

  report.round_latency = SummarizeRoundLatencies(std::move(round_seconds));
  report.seconds_per_round = report.round_latency.mean;
  report.telemetry = registry.TakeSnapshot();
  // Stage-boundary contract (CAD_CHECK_LEVEL=full only): the 3-sigma state
  // and the assembled report must be structurally sound before they leave
  // the detector.
  CAD_VALIDATE(check::ValidateRunningStats(variation_stats,
                                           options_.metrics_registry));
  CAD_VALIDATE(check::ValidateReport(report, n, options_.metrics_registry));
  return report;
}

}  // namespace cad::core
