#!/usr/bin/env bash
# Validates the machine-readable telemetry produced by the observability
# layer: runs bench/micro_core with --telemetry-out, then checks that the
# combined JSON parses, carries the pipeline metrics the docs promise
# (cad_rounds_total, the cad_round_seconds buckets, cad_tsg_edges_pruned),
# and that the Chrome-trace JSONL is one well-formed event per line. Then
# runs bench/engine_bench --smoke --flight-out and checks the flight log:
# one parseable JSON object per line, every DecisionRecord key present,
# consecutive round indices — failures name the offending line. Then the
# advisor contract: tools/cad_explain --advise over that same flight log must
# emit one AdviceReport JSON line with the documented shape (advice_version,
# window, ranking, segments, timeline) and be byte-identical across two runs.
# Finally the fleet exposition hygiene gate: bench/fleet_bench --metrics-out
# dumps the live tenant-labelled /metrics text, and every metric name in it —
# fleet rollups and per-tenant series alike — must match ^cad_[a-z0-9_]+$,
# every tenant label value must match the registration charset
# ([a-z0-9_] then [a-z0-9_.-], <= 120 chars), and the nine documented
# cad_fleet_* families must all be present.
#
# Usage: tools/check_telemetry.sh [build_dir]   (default: build)
set -euo pipefail

BUILD_DIR="${1:-build}"
MICRO="$BUILD_DIR/bench/micro_core"
if [[ ! -x "$MICRO" ]]; then
  echo "error: $MICRO not found — build first (cmake --build $BUILD_DIR)" >&2
  exit 1
fi
command -v python3 > /dev/null 2>&1 \
  || { echo "error: python3 required to validate telemetry JSON" >&2; exit 1; }

OUT_DIR="$(mktemp -d)"
trap 'rm -rf "$OUT_DIR"' EXIT
OUT="$OUT_DIR/telemetry.json"

# One small benchmark repetition is enough to populate the round pipeline.
"$MICRO" --benchmark_filter='BM_OutlierDetectionRound/26$' \
         --benchmark_min_time=0.05 \
         --telemetry-out "$OUT" > /dev/null

for f in "$OUT" "$OUT.trace.jsonl" "$OUT.prom"; do
  [[ -s "$f" ]] || { echo "FAIL: $f missing or empty" >&2; exit 1; }
done

python3 - "$OUT" <<'EOF'
import json, sys

path = sys.argv[1]
doc = json.load(open(path))
metrics = doc["metrics"]

for name, value in metrics["counters"].items():
    assert isinstance(value, int) and value >= 0, (
        f"counter {name} must be a non-negative integer, got {value!r}")

rounds = metrics["counters"].get("cad_rounds_total", 0)
assert rounds > 0, "cad_rounds_total missing or zero"

hist = metrics["histograms"]["cad_round_seconds"]
assert hist["count"] == rounds, (
    f"cad_round_seconds count {hist['count']} != cad_rounds_total {rounds}")
assert hist["buckets"], "cad_round_seconds has no buckets"
assert sum(b["count"] for b in hist["buckets"]) == hist["count"]
bounds = [b["le"] for b in hist["buckets"][:-1]]
assert bounds == sorted(bounds), "bucket bounds must ascend"
assert hist["buckets"][-1]["le"] == "+Inf", "last bucket must be +Inf"

assert "cad_tsg_edges_pruned" in metrics["counters"], "cad_tsg_edges_pruned missing"
assert "spans" in doc and "dropped_spans" in doc

# The tracer was enabled, so the trace must hold the per-round spans.
names = [s["name"] for s in doc["spans"]]
assert names.count("round") > 0, "no round spans recorded"

with open(path + ".trace.jsonl") as f:
    n_lines = 0
    for line in f:
        event = json.loads(line)
        assert event["ph"] == "X" and "ts" in event and "dur" in event
        n_lines += 1
assert n_lines == len(doc["spans"]), "JSONL line count != embedded span count"

print(f"OK: {rounds} rounds, {n_lines} spans, "
      f"{len(hist['buckets'])} latency buckets")
EOF

grep -q '^cad_round_seconds_bucket{le="+Inf"}' "$OUT.prom" \
  || { echo "FAIL: Prometheus exposition lacks +Inf bucket" >&2; exit 1; }

# --- Flight-recorder JSONL dump -------------------------------------------
ENGINE_BENCH="$BUILD_DIR/bench/engine_bench"
if [[ ! -x "$ENGINE_BENCH" ]]; then
  echo "error: $ENGINE_BENCH not found — build first" >&2
  exit 1
fi
FLIGHT="$OUT_DIR/flight.jsonl"
"$ENGINE_BENCH" --smoke --flight-out "$FLIGHT" > "$OUT_DIR/bench.json" \
  2> /dev/null
[[ -s "$FLIGHT" ]] || { echo "FAIL: $FLIGHT missing or empty" >&2; exit 1; }

python3 - "$FLIGHT" <<'EOF'
import json, sys

path = sys.argv[1]
required = [
    "round", "window_start", "window_end", "n_variations", "mu", "sigma",
    "threshold", "score", "abnormal", "anomaly_open", "n_outliers",
    "n_communities", "n_edges", "modularity", "entered", "exited", "movers",
    "timings",
]
timing_keys = [
    "correlation_seconds", "knn_seconds", "louvain_seconds",
    "coappearance_seconds", "round_seconds", "unix_us",
]

prev_round = None
n_records = 0
with open(path) as f:
    for lineno, line in enumerate(f, start=1):
        line = line.strip()
        if not line:
            sys.exit(f"FAIL: {path}:{lineno}: blank line in flight log")
        try:
            record = json.loads(line)
        except json.JSONDecodeError as e:
            sys.exit(f"FAIL: {path}:{lineno}: not valid JSON: {e}")
        for key in required:
            if key not in record:
                sys.exit(f"FAIL: {path}:{lineno}: key '{key}' missing")
        for key in timing_keys:
            if key not in record["timings"]:
                sys.exit(f"FAIL: {path}:{lineno}: timings key '{key}' missing")
        if record["window_start"] >= record["window_end"]:
            sys.exit(f"FAIL: {path}:{lineno}: empty window span")
        # The dump walks the ring oldest to newest: consecutive rounds.
        if prev_round is not None and record["round"] != prev_round + 1:
            sys.exit(f"FAIL: {path}:{lineno}: round {record['round']} "
                     f"follows {prev_round} (not consecutive)")
        prev_round = record["round"]
        n_records += 1

if n_records == 0:
    sys.exit(f"FAIL: {path}: no records")
print(f"OK: {n_records} flight-log records, rounds end at {prev_round}")
EOF

# --- Root-cause advice JSON ------------------------------------------------
CAD_EXPLAIN="$BUILD_DIR/tools/cad_explain/cad_explain"
if [[ ! -x "$CAD_EXPLAIN" ]]; then
  echo "error: $CAD_EXPLAIN not found — build first" >&2
  exit 1
fi
ADVICE="$OUT_DIR/advice.json"
"$CAD_EXPLAIN" --advise "$FLIGHT" > "$ADVICE"
[[ -s "$ADVICE" ]] || { echo "FAIL: $ADVICE missing or empty" >&2; exit 1; }
# The offline replay is pure: same flight log in, same bytes out.
"$CAD_EXPLAIN" --advise "$FLIGHT" | cmp -s - "$ADVICE" \
  || { echo "FAIL: cad_explain --advise is not byte-deterministic" >&2
       exit 1; }

python3 - "$ADVICE" <<'EOF'
import json, sys

path = sys.argv[1]
doc = json.load(open(path))

assert doc.get("advice_version") == 1, "advice_version must be 1"
window = doc["window"]
for key in ("first_round", "last_round", "rounds_scanned", "rounds_abnormal"):
    assert isinstance(window.get(key), int), f"window.{key} must be an int"
assert window["rounds_scanned"] > 0, "advice over an empty window"

ranking = doc["ranking"]
finding_keys = [
    "sensor", "severity", "onset_round", "onset_window_start",
    "onset_window_end", "mover_rounds", "outlier_rounds", "enter_count",
    "exit_count", "structural", "blast_radius", "peers",
]
prev_severity = None
for i, finding in enumerate(ranking):
    for key in finding_keys:
        assert key in finding, f"ranking[{i}] lacks '{key}'"
    assert finding["blast_radius"] == len(finding["peers"]), (
        f"ranking[{i}]: blast_radius != len(peers)")
    if prev_severity is not None:
        assert finding["severity"] <= prev_severity, (
            f"ranking[{i}]: severity must be non-increasing")
    prev_severity = finding["severity"]

for i, segment in enumerate(doc["segments"]):
    assert segment["first_round"] <= segment["last_round"], (
        f"segments[{i}]: empty segment")

prev_round = None
for i, event in enumerate(doc["timeline"]):
    for key in ("round", "abnormal", "anomaly_open", "score", "entered",
                "exited", "movers"):
        assert key in event, f"timeline[{i}] lacks '{key}'"
    if prev_round is not None:
        assert event["round"] > prev_round, "timeline rounds must ascend"
    prev_round = event["round"]

print(f"OK: advice ranks {len(ranking)} sensor(s) over "
      f"{window['rounds_scanned']} rounds, "
      f"{len(doc['segments'])} segment(s), "
      f"{len(doc['timeline'])} timeline event(s)")
EOF

# --- Fleet tenant-labelled exposition --------------------------------------
FLEET_BENCH="$BUILD_DIR/bench/fleet_bench"
if [[ ! -x "$FLEET_BENCH" ]]; then
  echo "error: $FLEET_BENCH not found — build first" >&2
  exit 1
fi
FLEET_PROM="$OUT_DIR/fleet.prom"
"$FLEET_BENCH" --smoke --out "$OUT_DIR/fleet_bench.json" \
  --metrics-out "$FLEET_PROM" > /dev/null 2> /dev/null
[[ -s "$FLEET_PROM" ]] || { echo "FAIL: $FLEET_PROM missing or empty" >&2
                            exit 1; }

python3 - "$FLEET_PROM" <<'EOF'
import re, sys

path = sys.argv[1]
# Metric-name hygiene: everything the fleet exposes — rollup counters,
# histogram series (_bucket/_count/_sum), and per-tenant labelled lines —
# must stay inside the project namespace and charset.
name_re = re.compile(r'^cad_[a-z0-9_]+$')
label_re = re.compile(r'^[a-z_][a-z0-9_]*$')
# Tenant label values mirror FleetEngine's registration charset.
tenant_re = re.compile(r'^[a-z0-9_][a-z0-9_.\-]{0,119}$')
line_re = re.compile(r'^([^\s{]+)(\{[^}]*\})?\s+\S+')
label_pair_re = re.compile(r'([^=,{}]+)="([^"]*)"')

families = set()
tenants = set()
n_series = 0
with open(path) as f:
    for lineno, line in enumerate(f, start=1):
        line = line.rstrip("\n")
        if not line or line.startswith("#"):
            continue
        m = line_re.match(line)
        if not m:
            sys.exit(f"FAIL: {path}:{lineno}: unparseable exposition line: "
                     f"{line!r}")
        name, labels = m.group(1), m.group(2)
        if not name_re.match(name):
            sys.exit(f"FAIL: {path}:{lineno}: metric name '{name}' violates "
                     f"^cad_[a-z0-9_]+$")
        families.add(re.sub(r'_(bucket|count|sum)$', '', name))
        n_series += 1
        if labels:
            for label, value in label_pair_re.findall(labels):
                if not label_re.match(label):
                    sys.exit(f"FAIL: {path}:{lineno}: label name '{label}' "
                             f"is not a valid Prometheus label")
                if label == "tenant":
                    if not tenant_re.match(value):
                        sys.exit(f"FAIL: {path}:{lineno}: tenant label "
                                 f"{value!r} violates the registration "
                                 f"charset")
                    tenants.add(value)

documented = [
    "cad_fleet_samples_total", "cad_fleet_samples_rejected_total",
    "cad_fleet_rounds_total", "cad_fleet_quanta_total",
    "cad_fleet_steady_rounds_total", "cad_fleet_steady_allocs_total",
    "cad_fleet_tenants", "cad_fleet_workers", "cad_fleet_round_seconds",
]
missing = [name for name in documented if name not in families]
if missing:
    sys.exit(f"FAIL: fleet exposition lacks documented families: {missing}")
if not tenants:
    sys.exit("FAIL: no tenant-labelled series in the fleet exposition")

print(f"OK: {n_series} fleet series, {len(families)} families, "
      f"{len(tenants)} tenant label(s), all names within ^cad_[a-z0-9_]+$")
EOF

echo "telemetry check passed"
