// cad_explain — replay a dumped flight log and say why a round fired.
//
// Input is the JSONL flight log written by the engine (anomaly-close appends
// to CadOptions::flight_log_path, crash dumps, StreamingCad's
// DumpFlightLogJsonl, engine_bench --flight-out): one DecisionRecord per
// line, as serialized by obs::DecisionRecordToJson.
//
//   cad_explain LOG.jsonl              summary table, one line per round
//   cad_explain --abnormal LOG.jsonl   only the rounds that fired
//   cad_explain --round R LOG.jsonl    full provenance for round R: the
//                                      record, the delta against the
//                                      previous round in the log, and the
//                                      stage timings
//   cad_explain --advise [--from A] [--to B] LOG.jsonl
//                                      root-cause advice over the inclusive
//                                      round range [A, B] (default: the
//                                      whole log): the advisor::AdviceReport
//                                      JSON, byte-identical to a live
//                                      /advise?from=A&to=B scrape of the
//                                      same flight log
//
// Exit codes: 0 ok, 1 usage/I-O error, 2 parse error (reported with the
// offending line number), 3 round (or advise range) not found.
//
// The parser is a deliberately small recursive-descent JSON reader — the
// repo's no-third-party-deps rule applies to tools too, and the schema is
// ours.
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "advisor/advisor.h"
#include "obs/flight_recorder.h"

namespace cad::tools {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON value + parser (objects, arrays, strings, numbers, bools,
// null). Strings decode every RFC 8259 escape including \uXXXX (with
// surrogate pairs) to UTF-8; duplicate object keys are a hard error — a
// flight log never legitimately repeats a key, so a duplicate means a
// corrupt or hand-mangled line and silently keeping either value would lie.
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number = 0.0;
  std::string string_value;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue* Find(const std::string& key) const {
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
  double Number(const std::string& key, double fallback = 0.0) const {
    const JsonValue* v = Find(key);
    return v != nullptr && v->kind == Kind::kNumber ? v->number : fallback;
  }
  bool Bool(const std::string& key) const {
    const JsonValue* v = Find(key);
    return v != nullptr && v->kind == Kind::kBool && v->bool_value;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  // Parses one JSON value spanning the whole input; on failure, fills
  // `error` and returns false.
  bool Parse(JsonValue* out, std::string* error) {
    pos_ = 0;
    if (!ParseValue(out, error)) return false;
    SkipSpace();
    if (pos_ != text_.size()) {
      *error = "trailing characters after JSON value";
      return false;
    }
    return true;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\r' || text_[pos_] == '\n')) {
      ++pos_;
    }
  }

  bool Literal(const char* word, std::string* error) {
    const size_t len = std::strlen(word);
    if (text_.compare(pos_, len, word) != 0) {
      *error = std::string("expected '") + word + "'";
      return false;
    }
    pos_ += len;
    return true;
  }

  // Reads the four hex digits of a \uXXXX escape (pos_ on the first digit).
  bool ParseHex4(uint32_t* out, std::string* error) {
    if (pos_ + 4 > text_.size()) {
      *error = "truncated \\u escape";
      return false;
    }
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text_[pos_++];
      value <<= 4;
      if (h >= '0' && h <= '9') {
        value |= static_cast<uint32_t>(h - '0');
      } else if (h >= 'a' && h <= 'f') {
        value |= static_cast<uint32_t>(h - 'a' + 10);
      } else if (h >= 'A' && h <= 'F') {
        value |= static_cast<uint32_t>(h - 'A' + 10);
      } else {
        *error = std::string("non-hex digit '") + h + "' in \\u escape";
        return false;
      }
    }
    *out = value;
    return true;
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      *out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      *out += static_cast<char>(0xC0 | (cp >> 6));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      *out += static_cast<char>(0xE0 | (cp >> 12));
      *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      *out += static_cast<char>(0xF0 | (cp >> 18));
      *out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool ParseString(std::string* out, std::string* error) {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      *error = "expected string";
      return false;
    }
    ++pos_;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'u': {
            uint32_t cp = 0;
            if (!ParseHex4(&cp, error)) return false;
            if (cp >= 0xD800 && cp <= 0xDBFF) {
              // High surrogate: the low half must follow as another \uXXXX.
              if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                  text_[pos_ + 1] != 'u') {
                *error = "high surrogate not followed by \\u low surrogate";
                return false;
              }
              pos_ += 2;
              uint32_t low = 0;
              if (!ParseHex4(&low, error)) return false;
              if (low < 0xDC00 || low > 0xDFFF) {
                *error = "invalid low surrogate in \\u pair";
                return false;
              }
              cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
            } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
              *error = "unpaired low surrogate in \\u escape";
              return false;
            }
            AppendUtf8(cp, out);
            continue;
          }
          default:
            *error = std::string("unsupported escape \\") + esc;
            return false;
        }
      }
      *out += c;
    }
    if (pos_ >= text_.size()) {
      *error = "unterminated string";
      return false;
    }
    ++pos_;  // closing quote
    return true;
  }

  bool ParseValue(JsonValue* out, std::string* error) {
    SkipSpace();
    if (pos_ >= text_.size()) {
      *error = "unexpected end of input";
      return false;
    }
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out, error);
    if (c == '[') return ParseArray(out, error);
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->string_value, error);
    }
    if (c == 't') {
      out->kind = JsonValue::Kind::kBool;
      out->bool_value = true;
      return Literal("true", error);
    }
    if (c == 'f') {
      out->kind = JsonValue::Kind::kBool;
      out->bool_value = false;
      return Literal("false", error);
    }
    if (c == 'n') {
      out->kind = JsonValue::Kind::kNull;
      return Literal("null", error);
    }
    // Number.
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) {
      *error = std::string("unexpected character '") + c + "'";
      return false;
    }
    char* end = nullptr;
    const std::string token = text_.substr(start, pos_ - start);
    out->number = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      *error = "malformed number '" + token + "'";
      return false;
    }
    out->kind = JsonValue::Kind::kNumber;
    return true;
  }

  bool ParseArray(JsonValue* out, std::string* error) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue element;
      if (!ParseValue(&element, error)) return false;
      out->array.push_back(std::move(element));
      SkipSpace();
      if (pos_ >= text_.size()) {
        *error = "unterminated array";
        return false;
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      *error = "expected ',' or ']' in array";
      return false;
    }
  }

  bool ParseObject(JsonValue* out, std::string* error) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipSpace();
      std::string key;
      if (!ParseString(&key, error)) return false;
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        *error = "expected ':' after object key";
        return false;
      }
      ++pos_;
      JsonValue value;
      if (!ParseValue(&value, error)) return false;
      if (out->object.find(key) != out->object.end()) {
        *error = "duplicate object key '" + key + "'";
        return false;
      }
      out->object.emplace(std::move(key), std::move(value));
      SkipSpace();
      if (pos_ >= text_.size()) {
        *error = "unterminated object";
        return false;
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      *error = "expected ',' or '}' in object";
      return false;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Flight-log model
// ---------------------------------------------------------------------------

struct LogRecord {
  int line = 0;  // 1-based line in the file
  int round = 0;
  int window_start = 0;
  int window_end = 0;
  int n_variations = 0;
  double mu = 0.0;
  double sigma = 0.0;
  double threshold = 0.0;
  double score = 0.0;
  bool abnormal = false;
  bool anomaly_open = false;
  int n_outliers = 0;
  int n_communities = 0;
  int n_edges = 0;
  double modularity = 0.0;
  std::vector<int> entered;
  std::vector<int> exited;
  std::vector<int> movers;
  double correlation_seconds = 0.0;
  double knn_seconds = 0.0;
  double louvain_seconds = 0.0;
  double coappearance_seconds = 0.0;
  double round_seconds = 0.0;
};

const char* const kRequiredKeys[] = {
    "round",      "window_start", "window_end",   "n_variations",
    "mu",         "sigma",        "threshold",    "score",
    "abnormal",   "anomaly_open", "n_outliers",   "n_communities",
    "n_edges",    "modularity",   "entered",      "exited",
    "movers"};

bool IntArray(const JsonValue& object, const char* key,
              std::vector<int>* out, std::string* error) {
  const JsonValue* value = object.Find(key);
  if (value == nullptr || value->kind != JsonValue::Kind::kArray) {
    *error = std::string("key '") + key + "' missing or not an array";
    return false;
  }
  out->clear();
  for (const JsonValue& element : value->array) {
    if (element.kind != JsonValue::Kind::kNumber) {
      *error = std::string("array '") + key + "' holds a non-number";
      return false;
    }
    out->push_back(static_cast<int>(element.number));
  }
  return true;
}

bool RecordFromJson(const JsonValue& json, LogRecord* record,
                    std::string* error) {
  if (json.kind != JsonValue::Kind::kObject) {
    *error = "record is not a JSON object";
    return false;
  }
  for (const char* key : kRequiredKeys) {
    if (json.Find(key) == nullptr) {
      *error = std::string("required key '") + key + "' missing";
      return false;
    }
  }
  record->round = static_cast<int>(json.Number("round", -1));
  record->window_start = static_cast<int>(json.Number("window_start"));
  record->window_end = static_cast<int>(json.Number("window_end"));
  record->n_variations = static_cast<int>(json.Number("n_variations"));
  record->mu = json.Number("mu");
  record->sigma = json.Number("sigma");
  record->threshold = json.Number("threshold");
  record->score = json.Number("score");
  record->abnormal = json.Bool("abnormal");
  record->anomaly_open = json.Bool("anomaly_open");
  record->n_outliers = static_cast<int>(json.Number("n_outliers"));
  record->n_communities = static_cast<int>(json.Number("n_communities"));
  record->n_edges = static_cast<int>(json.Number("n_edges"));
  record->modularity = json.Number("modularity");
  if (!IntArray(json, "entered", &record->entered, error)) return false;
  if (!IntArray(json, "exited", &record->exited, error)) return false;
  if (!IntArray(json, "movers", &record->movers, error)) return false;
  if (const JsonValue* timings = json.Find("timings");
      timings != nullptr && timings->kind == JsonValue::Kind::kObject) {
    record->correlation_seconds = timings->Number("correlation_seconds");
    record->knn_seconds = timings->Number("knn_seconds");
    record->louvain_seconds = timings->Number("louvain_seconds");
    record->coappearance_seconds = timings->Number("coappearance_seconds");
    record->round_seconds = timings->Number("round_seconds");
  }
  return true;
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

void PrintIds(const char* label, const std::vector<int>& ids) {
  std::printf("  %-10s", label);
  if (ids.empty()) {
    std::printf(" (none)\n");
    return;
  }
  for (int v : ids) std::printf(" %d", v);
  std::printf("\n");
}

void PrintSummaryHeader() {
  std::printf("%6s %6s %9s %9s %9s %7s %5s %6s %8s  %s\n", "round", "n_r",
              "mu", "sigma", "thresh", "score", "comm", "edges", "modular",
              "verdict");
}

void PrintSummaryLine(const LogRecord& r) {
  std::printf("%6d %6d %9.4f %9.4f %9.4f %7.3f %5d %6d %8.4f  %s%s\n",
              r.round, r.n_variations, r.mu, r.sigma, r.threshold, r.score,
              r.n_communities, r.n_edges, r.modularity,
              r.abnormal ? "ABNORMAL" : "normal",
              r.anomaly_open ? " (anomaly open)" : "");
}

void PrintDetail(const LogRecord& r, const LogRecord* prev) {
  std::printf("round %d  window [%d, %d)\n", r.round, r.window_start,
              r.window_end);
  std::printf("  verdict    %s%s\n", r.abnormal ? "ABNORMAL" : "normal",
              r.anomaly_open ? ", anomaly open after this round" : "");
  const double deviation = std::abs(r.n_variations - r.mu);
  std::printf("  rule       |n_r - mu| = |%d - %.4f| = %.4f %s threshold %.4f\n",
              r.n_variations, r.mu, deviation, r.abnormal ? ">=" : "<",
              r.threshold);
  std::printf("  n_r        %d variation(s); %d outlier(s) in O_r\n",
              r.n_variations, r.n_outliers);
  std::printf("  stats      mu %.4f, sigma %.4f, score %.3f\n", r.mu, r.sigma,
              r.score);
  std::printf("  structure  %d communities, %d TSG edges, modularity %.4f\n",
              r.n_communities, r.n_edges, r.modularity);
  PrintIds("entered", r.entered);
  PrintIds("exited", r.exited);
  PrintIds("movers", r.movers);
  if (prev != nullptr) {
    std::printf("  vs round %d:", prev->round);
    std::printf(" dn_r %+d, dmu %+.4f, dsigma %+.4f, dthreshold %+.4f%s\n",
                r.n_variations - prev->n_variations, r.mu - prev->mu,
                r.sigma - prev->sigma, r.threshold - prev->threshold,
                prev->abnormal != r.abnormal ? " — verdict flipped" : "");
  } else {
    std::printf("  vs prev    (no preceding round in this log)\n");
  }
  std::printf("  timings    corr %.3gs, knn %.3gs, louvain %.3gs, "
              "coapp %.3gs, round %.3gs\n",
              r.correlation_seconds, r.knn_seconds, r.louvain_seconds,
              r.coappearance_seconds, r.round_seconds);
}

// Rehydrates the deterministic prefix of a DecisionRecord from a parsed log
// line — exactly the fields the advisor consumes (it never reads timings).
obs::DecisionRecord ToDecisionRecord(const LogRecord& r) {
  obs::DecisionRecord record;
  record.round = r.round;
  record.window_start = r.window_start;
  record.window_end = r.window_end;
  record.n_variations = r.n_variations;
  record.mu = r.mu;
  record.sigma = r.sigma;
  record.threshold = r.threshold;
  record.score = r.score;
  record.abnormal = r.abnormal;
  record.anomaly_open = r.anomaly_open;
  record.n_outliers = r.n_outliers;
  record.n_communities = r.n_communities;
  record.n_edges = r.n_edges;
  record.modularity = r.modularity;
  record.entered = r.entered;
  record.exited = r.exited;
  record.movers = r.movers;
  return record;
}

constexpr char kUsage[] =
    "usage: cad_explain [--abnormal | --round R | "
    "--advise [--from A] [--to B]] LOG.jsonl\n";

int Main(int argc, char** argv) {
  bool abnormal_only = false;
  bool advise = false;
  int target_round = -1;
  int from_round = -1;
  int to_round = -1;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--abnormal") == 0) {
      abnormal_only = true;
    } else if (std::strcmp(argv[i], "--round") == 0 && i + 1 < argc) {
      target_round = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--advise") == 0) {
      advise = true;
    } else if (std::strcmp(argv[i], "--from") == 0 && i + 1 < argc) {
      from_round = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--to") == 0 && i + 1 < argc) {
      to_round = std::atoi(argv[++i]);
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, kUsage);
      return 1;
    } else {
      path = argv[i];
    }
  }
  if (path.empty() || (!advise && (from_round >= 0 || to_round >= 0))) {
    std::fprintf(stderr, kUsage);
    return 1;
  }

  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "cad_explain: cannot open %s\n", path.c_str());
    return 1;
  }

  std::vector<LogRecord> records;
  std::string line;
  int line_number = 0;
  while (std::getline(file, line)) {
    ++line_number;
    if (line.empty()) continue;
    JsonValue json;
    std::string error;
    JsonParser parser(line);
    if (!parser.Parse(&json, &error)) {
      std::fprintf(stderr, "cad_explain: %s:%d: %s\n", path.c_str(),
                   line_number, error.c_str());
      return 2;
    }
    LogRecord record;
    record.line = line_number;
    if (!RecordFromJson(json, &record, &error)) {
      std::fprintf(stderr, "cad_explain: %s:%d: %s\n", path.c_str(),
                   line_number, error.c_str());
      return 2;
    }
    records.push_back(std::move(record));
  }
  if (records.empty()) {
    std::fprintf(stderr, "cad_explain: %s holds no records\n", path.c_str());
    return 1;
  }

  if (advise) {
    std::vector<obs::DecisionRecord> decision_records;
    decision_records.reserve(records.size());
    for (const LogRecord& r : records) {
      // Advise() requires rounds ascending; a flight log always is, so a
      // violation means the file was mangled — report the offending line.
      if (!decision_records.empty() && r.round <= decision_records.back().round) {
        std::fprintf(stderr,
                     "cad_explain: %s:%d: round %d does not ascend past %d\n",
                     path.c_str(), r.line, r.round,
                     decision_records.back().round);
        return 2;
      }
      decision_records.push_back(ToDecisionRecord(r));
    }
    advisor::AdviseWindow window;
    window.first_round = from_round;
    window.last_round = to_round;
    const advisor::AdviceReport report =
        advisor::Advise(decision_records, window);
    if (report.rounds_scanned == 0) {
      std::fprintf(stderr,
                   "cad_explain: no rounds of %s fall in [%d, %d]\n",
                   path.c_str(), from_round, to_round);
      return 3;
    }
    std::printf("%s\n", advisor::AdviceReportToJson(report).c_str());
    return 0;
  }

  if (target_round >= 0) {
    const LogRecord* record = nullptr;
    const LogRecord* prev = nullptr;
    for (const LogRecord& r : records) {
      if (r.round == target_round) record = &r;
      if (r.round == target_round - 1) prev = &r;
    }
    if (record == nullptr) {
      std::fprintf(stderr, "cad_explain: round %d is not in %s (%zu records)\n",
                   target_round, path.c_str(), records.size());
      return 3;
    }
    PrintDetail(*record, prev);
    return 0;
  }

  int abnormal = 0;
  PrintSummaryHeader();
  for (const LogRecord& r : records) {
    if (r.abnormal) ++abnormal;
    if (abnormal_only && !r.abnormal) continue;
    PrintSummaryLine(r);
  }
  std::printf("%zu record(s), %d abnormal; rounds %d..%d\n", records.size(),
              abnormal, records.front().round, records.back().round);
  return 0;
}

}  // namespace
}  // namespace cad::tools

int main(int argc, char** argv) { return cad::tools::Main(argc, argv); }
