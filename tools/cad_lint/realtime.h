// Tree-wide real-time-safety rules CL007/CL008.
//
// Unlike the per-file rules in rules.h, these need the whole tree at once:
// a CAD_REALTIME function in core/ may only be proven allocation-free by
// looking at the bodies of the graph/ and stats/ helpers it calls. The
// analysis is token-level and deliberately dependency-free, mirroring what
// Clang 20+'s -Wfunction-effects proves on toolchains that have it (see
// src/common/realtime.h for the two-layer contract).
//
// What it does, in order:
//   1. Per file: extract function definitions and declarations (qualified
//      names via class scopes and explicit `Class::` qualifiers), their
//      realtime annotations, the call sites inside each body, and any
//      banned primitives the body touches. CAD_VALIDATE / CAD_DCHECK
//      argument regions are skipped — they compile out below the `full`
//      check level, so their cost is not part of the steady-state path.
//   2. Merge declarations and definitions by qualified name, then walk the
//      call graph from every annotated root with memoized DFS, once per
//      effect (allocating / blocking).
//   3. CL007: a root reaching a banned primitive for an effect its
//      annotation forbids. The finding is attributed to the *primitive's*
//      site (with the call chain in the message), so one reasoned
//      suppression there covers every root that funnels through it.
//      CL008: an annotated function directly calling an annotated callee
//      with a weaker contract, or a virtual override dropping its base's
//      annotation.
//
// By design the analysis trusts annotated callees (their own root walk
// covers them) and resolves calls by name, so it over-approximates on
// overloads and under-approximates on calls through function pointers —
// the same trade every token-level layer in this tree makes. The dynamic
// alloc-hook tests (tests/core/engine_alloc_test.cc) are the cross-check.
#ifndef CAD_TOOLS_CAD_LINT_REALTIME_H_
#define CAD_TOOLS_CAD_LINT_REALTIME_H_

#include <string>
#include <vector>

#include "rules.h"

namespace cad_lint {

struct FileInput {
  std::string path;
  std::string source;
};

// Runs CL007/CL008 over every file at once. Findings come back sorted by
// (path, line, rule) with `suppressed` already resolved against each
// finding's own file. CL000 (malformed suppressions) is NOT re-reported
// here — LintSource already covers it per file.
std::vector<Finding> LintRealtime(const std::vector<FileInput>& files);

}  // namespace cad_lint

#endif  // CAD_TOOLS_CAD_LINT_REALTIME_H_
