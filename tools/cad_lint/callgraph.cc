#include "callgraph.h"

#include <algorithm>
#include <cctype>

namespace cad_lint {

unsigned AnnotationMask(const std::string& t) {
  if (t == "CAD_REALTIME" || t == "CAD_REALTIME_AUDITED") {
    return kEffAlloc | kEffBlock;
  }
  if (t == "CAD_NONALLOCATING") return kEffAlloc;
  if (t == "CAD_NONBLOCKING") return kEffBlock;
  return 0;
}

std::string EffectVerb(unsigned effect) {
  return effect == kEffAlloc ? "allocate" : "block";
}

bool TokIs(const std::vector<Token>& toks, size_t i, std::string_view text) {
  return i < toks.size() && toks[i].text == text;
}

bool IsIdent(const std::vector<Token>& toks, size_t i) {
  return i < toks.size() && toks[i].kind == TokKind::kIdentifier;
}

bool IsMacroish(const std::string& t) {
  bool has_alpha = false;
  for (char c : t) {
    if (std::islower(static_cast<unsigned char>(c))) return false;
    if (std::isalpha(static_cast<unsigned char>(c))) has_alpha = true;
  }
  return has_alpha && t.size() >= 2;
}

const std::set<std::string_view>& NonCallKeywords() {
  static const std::set<std::string_view> kSet = {
      "if",       "for",      "while",    "switch",   "return",
      "sizeof",   "alignof",  "alignas",  "decltype", "noexcept",
      "catch",    "assert",   "defined",  "throw",    "new",
      "delete",   "void",     "int",      "bool",     "char",
      "double",   "float",    "long",     "short",    "unsigned",
      "signed",   "auto",     "explicit", "operator", "static_assert",
      "co_await", "co_return"};
  return kSet;
}

namespace {

// Lock RAII types whose declaration opens a held scope. `unique_lock` is
// listed separately because it also feeds the cv-wait idiom.
const std::set<std::string_view>& LockDeclTypes() {
  static const std::set<std::string_view> kSet = {
      "MutexLock", "lock_guard", "unique_lock", "scoped_lock", "shared_lock"};
  return kSet;
}

bool IsSimpleIdent(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') return false;
  }
  return !std::isdigit(static_cast<unsigned char>(s[0]));
}

// Canonical lock key for a subject expression: strip the `.native()`
// escape hatch (same underlying mutex), qualify bare members with the
// enclosing class so header and out-of-line uses agree.
std::string CanonicalLockKey(std::string expr, const std::string& cls) {
  const auto strip_suffix = [&](std::string_view suffix) {
    if (expr.size() > suffix.size() &&
        expr.compare(expr.size() - suffix.size(), suffix.size(), suffix) ==
            0) {
      expr.resize(expr.size() - suffix.size());
    }
  };
  strip_suffix(".native()");
  strip_suffix("->native()");
  if (expr.rfind("this->", 0) == 0) expr = expr.substr(6);
  if (IsSimpleIdent(expr) && !cls.empty()) return cls + "::" + expr;
  return expr;
}

}  // namespace

std::optional<Primitive> MatchPrimitive(const std::vector<Token>& toks,
                                        size_t i) {
  if (toks[i].kind != TokKind::kIdentifier) return std::nullopt;
  const std::string& t = toks[i].text;
  const bool member =
      i > 0 && (TokIs(toks, i - 1, ".") || TokIs(toks, i - 1, "->"));
  const bool call = TokIs(toks, i + 1, "(");

  if (t == "new") {
    if (i > 0 && TokIs(toks, i - 1, "operator")) return std::nullopt;
    return Primitive{kEffAlloc, "new"};
  }
  if (t == "delete") {
    // `= delete` and `operator delete` declarations are not deallocations.
    if (i > 0 && (TokIs(toks, i - 1, "operator") || TokIs(toks, i - 1, "=")))
      return std::nullopt;
    return Primitive{kEffAlloc, "delete"};
  }
  if (t == "throw") return Primitive{kEffAlloc | kEffBlock, "throw"};

  static const std::set<std::string_view> kHeap = {
      "malloc", "calloc", "realloc", "free", "strdup", "aligned_alloc"};
  if (!member && call && kHeap.count(t) > 0) {
    return Primitive{kEffAlloc | kEffBlock, t};
  }
  if ((t == "make_unique" || t == "make_shared") &&
      (call || TokIs(toks, i + 1, "<"))) {
    return Primitive{kEffAlloc, t};
  }
  if (t == "to_string" && call && !member) {
    return Primitive{kEffAlloc, "to_string"};
  }
  if (t == "function" && TokIs(toks, i + 1, "<")) {
    return Primitive{kEffAlloc, "std::function"};
  }

  static const std::set<std::string_view> kGrow = {
      "push_back",  "emplace_back", "emplace", "emplace_front",
      "push_front", "insert",       "append",  "reserve"};
  if (member && call && kGrow.count(t) > 0) return Primitive{kEffAlloc, t};

  if (LockDeclTypes().count(t) > 0) return Primitive{kEffBlock, t};
  if (member && call && t == "lock") return Primitive{kEffBlock, "lock()"};

  static const std::set<std::string_view> kWaits = {
      "sleep_for", "sleep_until", "wait", "wait_for", "wait_until", "join"};
  if (call && kWaits.count(t) > 0 &&
      (member || (i > 0 && TokIs(toks, i - 1, "::")))) {
    return Primitive{kEffBlock, t};
  }

  static const std::set<std::string_view> kStreamObjs = {"cout", "cerr",
                                                         "clog"};
  if (!member && kStreamObjs.count(t) > 0) {
    return Primitive{kEffAlloc | kEffBlock, "std::" + t};
  }
  static const std::set<std::string_view> kStdio = {
      "printf", "fprintf", "vfprintf", "puts",   "fputs", "fwrite", "fread",
      "fopen",  "fclose",  "fflush",   "getline", "system", "popen", "pclose"};
  if (call && kStdio.count(t) > 0) return Primitive{kEffAlloc | kEffBlock, t};
  static const std::set<std::string_view> kStreamTypes = {
      "ofstream",      "ifstream",      "fstream", "stringstream",
      "ostringstream", "istringstream"};
  if (kStreamTypes.count(t) > 0) {
    return Primitive{kEffAlloc | kEffBlock, t};
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Declarator parsing: is this statement a function declaration/definition,
// and if so what is it called and how is it annotated?
// ---------------------------------------------------------------------------

namespace {

struct DeclInfo {
  std::string name;         // "Name" or "~Name"
  std::string qual_prefix;  // "Class" when written `Class::Name`, else ""
  unsigned mask = 0;
  bool is_virtual = false;
  bool is_override = false;
  std::vector<std::string> requires_locks;  // raw exprs, not yet canonical
  std::vector<std::string> excludes_locks;
};

// Captures the balanced-paren argument list opening at `open` (which must
// index a "("), split on top-level commas, each argument token-joined.
std::vector<std::string> CaptureArgs(const std::vector<Token>& toks,
                                     const std::vector<size_t>& stmt,
                                     size_t open) {
  std::vector<std::string> args;
  std::string cur;
  int depth = 0;
  for (size_t k = open; k < stmt.size(); ++k) {
    const std::string& t = toks[stmt[k]].text;
    if (t == "(") {
      if (++depth == 1) continue;
    }
    if (t == ")") {
      if (--depth == 0) break;
    }
    if (t == "," && depth == 1) {
      if (!cur.empty()) args.push_back(cur);
      cur.clear();
      continue;
    }
    cur += t;
  }
  if (!cur.empty()) args.push_back(cur);
  return args;
}

// `stmt` holds token indices of one statement (everything since the last
// boundary, body brace excluded). The declarator is the first top-level
// `(` preceded by a plausible function name; rejected candidates (macro
// calls like GUARDED_BY, static_assert) are skipped past their matching
// `)` so their arguments cannot fake a declarator.
std::optional<DeclInfo> ParseDecl(const std::vector<Token>& toks,
                                  const std::vector<size_t>& stmt) {
  if (stmt.empty()) return std::nullopt;
  int paren = 0;
  size_t open = stmt.size();  // index *into stmt* of the declarator's "("
  for (size_t k = 0; k < stmt.size(); ++k) {
    const std::string& t = toks[stmt[k]].text;
    if (t == "(") {
      if (paren == 0) {
        bool ok = k > 0 && IsIdent(toks, stmt[k - 1]);
        if (ok) {
          const std::string& name = toks[stmt[k - 1]].text;
          ok = NonCallKeywords().count(name) == 0 && !IsMacroish(name);
        }
        if (ok) {
          open = k;
          break;
        }
      }
      ++paren;
      continue;
    }
    if (t == ")") {
      if (paren > 0) --paren;
      continue;
    }
    // A top-level `=` before the declarator means assignment or lambda,
    // and a control keyword means this is no declaration at all.
    if (paren == 0) {
      if (t == "=") return std::nullopt;
      if (toks[stmt[k]].kind == TokKind::kIdentifier &&
          (t == "if" || t == "for" || t == "while" || t == "switch" ||
           t == "catch" || t == "return" || t == "using" || t == "typedef" ||
           t == "friend" || t == "goto")) {
        return std::nullopt;
      }
    }
  }
  if (open >= stmt.size()) return std::nullopt;
  // The parameter list must close inside this statement.
  paren = 0;
  bool closed = false;
  for (size_t k = open; k < stmt.size(); ++k) {
    const std::string& t = toks[stmt[k]].text;
    if (t == "(") ++paren;
    if (t == ")" && --paren == 0) {
      closed = true;
      break;
    }
  }
  if (!closed) return std::nullopt;

  DeclInfo d;
  size_t name_at = open - 1;
  d.name = toks[stmt[name_at]].text;
  size_t before = name_at;  // index of the token just before the name
  if (name_at >= 1 && TokIs(toks, stmt[name_at - 1], "~")) {
    d.name = "~" + d.name;
    before = name_at - 1;
  }
  if (before >= 2 && TokIs(toks, stmt[before - 1], "::") &&
      IsIdent(toks, stmt[before - 2])) {
    const std::string& q = toks[stmt[before - 2]].text;
    // Uppercase qualifier = class; lowercase = namespace (project
    // convention), in which case the function is filed under its bare name.
    if (std::isupper(static_cast<unsigned char>(q[0]))) d.qual_prefix = q;
  }
  for (size_t k = 0; k < stmt.size(); ++k) {
    if (!IsIdent(toks, stmt[k])) continue;
    const std::string& t = toks[stmt[k]].text;
    d.mask |= AnnotationMask(t);
    if (t == "virtual") d.is_virtual = true;
    if (t == "override") d.is_override = true;
    if ((t == "REQUIRES" || t == "EXCLUDES") && k + 1 < stmt.size() &&
        TokIs(toks, stmt[k + 1], "(")) {
      std::vector<std::string> args = CaptureArgs(toks, stmt, k + 1);
      auto& dest = t == "REQUIRES" ? d.requires_locks : d.excludes_locks;
      for (std::string& arg : args) {
        // `REQUIRES(!mu)` is a negative capability — not a held lock.
        if (!arg.empty() && arg[0] != '!') dest.push_back(std::move(arg));
      }
    }
  }
  return d;
}

// ---------------------------------------------------------------------------
// Per-file extraction walk.
// ---------------------------------------------------------------------------

class FileParser {
 public:
  FileParser(std::string path, const LexedFile& lex, ParsedFile* out)
      : path_(std::move(path)), lex_(lex), out_(out) {}

  void Run() {
    const std::vector<Token>& toks = lex_.tokens;
    size_t skip_until = 0;  // exclusive token index: CAD_VALIDATE regions
    for (size_t i = 0; i < toks.size(); ++i) {
      const Token& tok = toks[i];
      if (tok.kind == TokKind::kDirective) {
        if (!InFunction()) ResetStmt();
        continue;
      }
      const std::string& t = tok.text;
      if (i >= skip_until && tok.kind == TokKind::kIdentifier &&
          (t == "CAD_VALIDATE" || t == "CAD_DCHECK") &&
          TokIs(toks, i + 1, "(")) {
        skip_until = SkipBalancedParens(toks, i + 1);
      }

      if (t == "{") {
        OnOpenBrace(i);
        continue;
      }
      if (t == "}") {
        OnCloseBrace();
        continue;
      }
      if (t == "(") ++paren_;
      if (t == ")") {
        if (paren_ > 0) --paren_;
        if (paren_ == 0) saw_close_ = true;
      }

      if (InFunction()) {
        if (i >= skip_until) RecordBodyToken(i);
        continue;
      }

      if (paren_ == 0) {
        if (t == ";") {
          OnStatementEnd();
          ResetStmt();
          continue;
        }
        if (t == ":" && tok.kind == TokKind::kPunct) {
          if (stmt_.size() == 1 && IsIdent(toks, stmt_[0]) &&
              (toks[stmt_[0]].text == "public" ||
               toks[stmt_[0]].text == "private" ||
               toks[stmt_[0]].text == "protected")) {
            ResetStmt();  // access label
            continue;
          }
          // After the parameter list closed, a lone `:` opens a
          // constructor initializer list.
          if (saw_close_ && !saw_eq_) ctor_init_ = true;
        }
        if (t == "=") saw_eq_ = true;
      }
      stmt_.push_back(i);
    }
  }

 private:
  struct Frame {
    char kind;  // 'N' namespace/extern/enum, 'C' class, 'F' function body,
                // 'O' other (control flow, init braces), 'I' ctor-member-init
    int fn = -1;
    std::string cls;
  };

  struct LockScope {
    std::string key;
    size_t depth;  // frames_.size() at acquisition; dies when it shrinks below
  };

  static size_t SkipBalancedParens(const std::vector<Token>& toks,
                                   size_t open) {
    int depth = 0;
    for (size_t j = open; j < toks.size(); ++j) {
      if (toks[j].text == "(") ++depth;
      if (toks[j].text == ")" && --depth == 0) return j + 1;
    }
    return open + 1;
  }

  bool InFunction() const {
    for (const Frame& f : frames_) {
      if (f.kind == 'F') return true;
    }
    return false;
  }

  ParsedFn* CurrentFn() {
    for (auto it = frames_.rbegin(); it != frames_.rend(); ++it) {
      if (it->kind == 'F') return &out_->fns[static_cast<size_t>(it->fn)];
    }
    return nullptr;
  }

  std::string EnclosingClass() const {
    for (auto it = frames_.rbegin(); it != frames_.rend(); ++it) {
      if (it->kind == 'C') return it->cls;
    }
    return "";
  }

  void ResetStmt() {
    stmt_.clear();
    ctor_init_ = false;
    saw_close_ = false;
    saw_eq_ = false;
  }

  std::vector<std::string> HeldKeys() const {
    std::vector<std::string> held;
    held.reserve(lock_scopes_.size());
    for (const LockScope& s : lock_scopes_) held.push_back(s.key);
    return held;
  }

  // First identifier after the class keyword, skipping attribute-macro
  // arguments (CAPABILITY("mutex")) and base-class lists.
  std::string ClassNameFromStmt() const {
    const std::vector<Token>& toks = lex_.tokens;
    for (size_t k = 0; k < stmt_.size(); ++k) {
      const std::string& t = toks[stmt_[k]].text;
      if (t != "class" && t != "struct" && t != "union") continue;
      for (size_t j = k + 1; j < stmt_.size(); ++j) {
        if (!IsIdent(toks, stmt_[j])) continue;
        if (j + 1 < stmt_.size() && TokIs(toks, stmt_[j + 1], "(")) {
          int depth = 0;
          size_t m = j + 1;
          for (; m < stmt_.size(); ++m) {
            if (toks[stmt_[m]].text == "(") ++depth;
            if (toks[stmt_[m]].text == ")" && --depth == 0) break;
          }
          j = m;
          continue;
        }
        return toks[stmt_[j]].text;
      }
      break;
    }
    return "(anonymous)";
  }

  void RegisterFn(const DeclInfo& d, bool has_body, int line, int* fn_idx) {
    ParsedFn fn;
    fn.last = d.name;
    if (!d.qual_prefix.empty()) {
      fn.qual = d.qual_prefix + "::" + d.name;
      fn.cls = d.qual_prefix;
    } else {
      const std::string cls = EnclosingClass();
      fn.qual = cls.empty() ? d.name : cls + "::" + d.name;
      fn.cls = cls;
    }
    fn.path = path_;
    fn.line = line;
    fn.mask = d.mask;
    fn.is_virtual = d.is_virtual;
    fn.is_override = d.is_override;
    fn.has_body = has_body;
    for (const std::string& expr : d.requires_locks) {
      fn.requires_locks.push_back(CanonicalLockKey(expr, fn.cls));
    }
    for (const std::string& expr : d.excludes_locks) {
      fn.excludes_locks.push_back(CanonicalLockKey(expr, fn.cls));
    }
    out_->fns.push_back(std::move(fn));
    if (fn_idx != nullptr) {
      *fn_idx = static_cast<int>(out_->fns.size()) - 1;
    }
  }

  // `member GUARDED_BY(mutex)` inside a class body.
  void ScanGuardedMembers() {
    const std::vector<Token>& toks = lex_.tokens;
    const std::string cls = EnclosingClass();
    if (cls.empty()) return;
    for (size_t k = 1; k + 1 < stmt_.size(); ++k) {
      if (toks[stmt_[k]].text != "GUARDED_BY" &&
          toks[stmt_[k]].text != "PT_GUARDED_BY") {
        continue;
      }
      if (!TokIs(toks, stmt_[k + 1], "(") || !IsIdent(toks, stmt_[k - 1])) {
        continue;
      }
      std::vector<std::string> args = CaptureArgs(toks, stmt_, k + 1);
      if (args.size() != 1) continue;
      out_->guarded.push_back(GuardedMember{
          cls, toks[stmt_[k - 1]].text, CanonicalLockKey(args[0], cls), path_,
          toks[stmt_[k - 1]].line});
    }
  }

  void OnStatementEnd() {
    // Declarations are only meaningful directly inside a class, a
    // namespace, or at the top level — not inside brace-initializers.
    if (!frames_.empty() && frames_.back().kind != 'C' &&
        frames_.back().kind != 'N') {
      return;
    }
    if (frames_.empty() || frames_.back().kind == 'C') ScanGuardedMembers();
    if (saw_eq_ && !saw_close_) return;  // variable with initializer
    std::optional<DeclInfo> d = ParseDecl(lex_.tokens, stmt_);
    if (!d) return;
    RegisterFn(*d, /*has_body=*/false, lex_.tokens[stmt_.front()].line,
               nullptr);
  }

  void OnOpenBrace(size_t i) {
    const std::vector<Token>& toks = lex_.tokens;
    if (paren_ > 0 || InFunction()) {
      frames_.push_back(Frame{'O', -1, ""});
      return;
    }
    // Member-init braces in a ctor initializer list (`: buf_{0} {`): the
    // statement continues past them; only the body brace closes it.
    if (ctor_init_ && i > 0 &&
        (toks[i - 1].kind == TokKind::kIdentifier ||
         toks[i - 1].text == ">")) {
      frames_.push_back(Frame{'I', -1, ""});
      return;
    }
    char kind = 'O';
    std::string cls;
    int fn_idx = -1;
    bool ns = false;
    bool classish = false;
    int paren = 0;
    for (size_t k = 0; k < stmt_.size(); ++k) {
      const Token& st = toks[stmt_[k]];
      if (st.text == "(") ++paren;
      if (st.text == ")" && paren > 0) --paren;
      if (paren != 0 || st.kind != TokKind::kIdentifier) continue;
      if (st.text == "namespace" || st.text == "extern" || st.text == "enum") {
        ns = true;
      }
      if (st.text == "class" || st.text == "struct" || st.text == "union") {
        classish = true;
      }
    }
    if (ns) {
      kind = 'N';
    } else if (classish && !saw_eq_) {
      kind = 'C';
      cls = ClassNameFromStmt();
    } else if (!saw_eq_ || saw_close_) {
      if (std::optional<DeclInfo> d = ParseDecl(toks, stmt_)) {
        kind = 'F';
        RegisterFn(*d, /*has_body=*/true, toks[stmt_.front()].line, &fn_idx);
        // REQUIRES(m) locks are held from entry to exit of the body: open
        // scopes at body depth so they close with the function frame.
        for (const std::string& key :
             out_->fns[static_cast<size_t>(fn_idx)].requires_locks) {
          lock_scopes_.push_back(LockScope{key, frames_.size() + 1});
        }
      }
    }
    frames_.push_back(Frame{kind, fn_idx, cls});
    ResetStmt();
  }

  void OnCloseBrace() {
    if (frames_.empty()) {
      ResetStmt();
      return;
    }
    const char kind = frames_.back().kind;
    frames_.pop_back();
    while (!lock_scopes_.empty() && lock_scopes_.back().depth > frames_.size()) {
      lock_scopes_.pop_back();
    }
    if (kind == 'F' || !InFunction()) unique_lock_vars_.clear();
    // 'I' frames sit mid-statement; everything else ends one.
    if (kind != 'I') ResetStmt();
  }

  // `LockType [<...>] var(subject)` declaration at `i` (indexing the lock
  // type). Returns the token index just past the subject's closing paren,
  // or 0 when the shape does not match (member calls `x.lock_guard(...)`,
  // unnamed temporaries `MutexLock(mu_)` — chains off temporaries must not
  // open held scopes).
  size_t TryLockDecl(size_t i, ParsedFn* fn) {
    const std::vector<Token>& toks = lex_.tokens;
    if (i > 0 && (TokIs(toks, i - 1, ".") || TokIs(toks, i - 1, "->"))) {
      return 0;
    }
    size_t j = i + 1;
    if (TokIs(toks, j, "<")) {  // template argument list
      int depth = 0;
      for (; j < toks.size(); ++j) {
        if (toks[j].text == "<") ++depth;
        if (toks[j].text == ">" && --depth == 0) {
          ++j;
          break;
        }
        if (toks[j].text == ">>" && (depth -= 2) <= 0) {
          ++j;
          break;
        }
        if (toks[j].text == ";") return 0;
      }
    }
    if (!IsIdent(toks, j)) return 0;
    const std::string var = toks[j].text;
    const std::string open = j + 1 < toks.size() ? toks[j + 1].text : "";
    if (open != "(" && open != "{") return 0;
    const std::string close = open == "(" ? ")" : "}";
    // Capture the subject, split on top-level commas (scoped_lock takes
    // several mutexes at once).
    std::vector<std::string> subjects;
    std::string cur;
    int depth = 0;
    size_t k = j + 1;
    for (; k < toks.size(); ++k) {
      const std::string& t = toks[k].text;
      if (t == open && ++depth == 1) continue;
      if (t == close && --depth == 0) break;
      if (t == "," && depth == 1) {
        subjects.push_back(cur);
        cur.clear();
        continue;
      }
      cur += t;
    }
    if (!cur.empty()) subjects.push_back(cur);
    if (k >= toks.size() || subjects.empty()) return 0;
    // A deferred/adopted lock (`unique_lock lk(mu, std::defer_lock)`) holds
    // nothing at declaration; drop tag arguments, keep real subjects.
    subjects.erase(
        std::remove_if(subjects.begin(), subjects.end(),
                       [](const std::string& s) {
                         return s.find("defer_lock") != std::string::npos ||
                                s.find("try_to_lock") != std::string::npos ||
                                s.find("adopt_lock") != std::string::npos;
                       }),
        subjects.end());
    if (toks[i].text == "unique_lock") unique_lock_vars_.insert(var);
    for (const std::string& subject : subjects) {
      if (subject.find("native") != std::string::npos) {
        sanction_native_until_ = k;
      }
      const std::string key = CanonicalLockKey(subject, fn->cls);
      LockAcquire acq;
      acq.key = key;
      acq.path = path_;
      acq.line = toks[i].line;
      acq.held = HeldKeys();
      fn->acquires.push_back(std::move(acq));
      lock_scopes_.push_back(LockScope{key, frames_.size()});
    }
    return k + 1;
  }

  void RecordBodyToken(size_t i) {
    ParsedFn* fn = CurrentFn();
    if (fn == nullptr) return;
    const std::vector<Token>& toks = lex_.tokens;
    const Token& tok = toks[i];

    if (tok.kind == TokKind::kIdentifier &&
        LockDeclTypes().count(tok.text) > 0) {
      TryLockDecl(i, fn);  // falls through: the type is also a CL007 prim
    }
    if (tok.kind == TokKind::kIdentifier && tok.text == "native" && i > 0 &&
        (TokIs(toks, i - 1, ".") || TokIs(toks, i - 1, "->")) &&
        TokIs(toks, i + 1, "(")) {
      fn->natives.push_back(
          NativeUse{path_, tok.line, i < sanction_native_until_});
    }

    if (std::optional<Primitive> prim = MatchPrimitive(toks, i)) {
      PrimHit hit{prim->label, prim->mask, path_, tok.line, HeldKeys(),
                  false};
      // `cv.wait(lk)` where lk is a unique_lock declared in this body is
      // the sanctioned condition-variable idiom.
      if ((tok.text == "wait" || tok.text == "wait_for" ||
           tok.text == "wait_until") &&
          TokIs(toks, i + 1, "(") && IsIdent(toks, i + 2) &&
          unique_lock_vars_.count(toks[i + 2].text) > 0) {
        hit.sanctioned_wait = true;
      }
      fn->prims.push_back(std::move(hit));
      return;
    }
    if (tok.kind != TokKind::kIdentifier) return;
    const std::string& t = tok.text;
    if (NonCallKeywords().count(t) > 0 || IsMacroish(t)) return;

    // Constructor pattern: `Type var(` / `Type var{` / `Type var;`.
    if (std::isupper(static_cast<unsigned char>(t[0])) &&
        IsIdent(toks, i + 1) &&
        (TokIs(toks, i + 2, "(") || TokIs(toks, i + 2, "{") ||
         TokIs(toks, i + 2, ";"))) {
      fn->calls.push_back(
          CallSite{t + "::" + t, CallKind::kCtor, path_, tok.line,
                   HeldKeys(), ""});
      return;
    }
    if (!TokIs(toks, i + 1, "(")) {
      // Not a call: a guarded-member access candidate. Implicit-this
      // accesses follow the trailing-underscore member convention; explicit
      // ones keep their single-identifier object prefix.
      const bool dotted =
          i > 0 && (TokIs(toks, i - 1, ".") || TokIs(toks, i - 1, "->"));
      if (dotted && i > 1 && IsIdent(toks, i - 2)) {
        fn->accesses.push_back(
            MemberAccess{t, toks[i - 2].text, path_, tok.line, HeldKeys()});
      } else if (!dotted && t.size() > 1 && t.back() == '_' &&
                 !TokIs(toks, i - 1, "::")) {
        fn->accesses.push_back(
            MemberAccess{t, "", path_, tok.line, HeldKeys()});
      }
      return;
    }
    if (i > 0 && (TokIs(toks, i - 1, ".") || TokIs(toks, i - 1, "->"))) {
      CallSite site{t, CallKind::kMethod, path_, tok.line, HeldKeys(), ""};
      if (i > 1 && IsIdent(toks, i - 2)) site.recv = toks[i - 2].text;
      fn->calls.push_back(std::move(site));
      return;
    }
    if (i > 1 && TokIs(toks, i - 1, "::") && IsIdent(toks, i - 2)) {
      const std::string& q = toks[i - 2].text;
      if (std::isupper(static_cast<unsigned char>(q[0]))) {
        fn->calls.push_back(CallSite{q + "::" + t, CallKind::kQualified,
                                     path_, tok.line, HeldKeys(), ""});
      } else {
        fn->calls.push_back(
            CallSite{t, CallKind::kFree, path_, tok.line, HeldKeys(), ""});
      }
      return;
    }
    fn->calls.push_back(
        CallSite{t, CallKind::kFree, path_, tok.line, HeldKeys(), ""});
  }

  std::string path_;
  const LexedFile& lex_;
  ParsedFile* out_;
  std::vector<Frame> frames_;
  std::vector<size_t> stmt_;
  std::vector<LockScope> lock_scopes_;
  std::set<std::string> unique_lock_vars_;
  size_t sanction_native_until_ = 0;
  int paren_ = 0;
  bool ctor_init_ = false;
  bool saw_close_ = false;
  bool saw_eq_ = false;
};

}  // namespace

void ParseFile(const std::string& path, const LexedFile& lex,
               ParsedFile* out) {
  FileParser(path, lex, out).Run();
}

// ---------------------------------------------------------------------------
// Merge + call-graph analysis over the merged function set.
// ---------------------------------------------------------------------------

std::vector<FuncNode> MergeParsedFns(std::vector<ParsedFn> parsed) {
  std::map<std::string, FuncNode> merged;
  std::stable_sort(parsed.begin(), parsed.end(),
                   [](const ParsedFn& a, const ParsedFn& b) {
                     if (a.path != b.path) return a.path < b.path;
                     return a.line < b.line;
                   });
  const auto append_unique = [](std::vector<std::string>* dest,
                                const std::vector<std::string>& src) {
    for (const std::string& s : src) {
      if (std::find(dest->begin(), dest->end(), s) == dest->end()) {
        dest->push_back(s);
      }
    }
  };
  for (ParsedFn& fn : parsed) {
    FuncNode& node = merged[fn.qual];
    if (node.qual.empty()) {
      node.qual = fn.qual;
      node.last = fn.last;
      node.cls = fn.cls;
      node.path = fn.path;
      node.line = fn.line;
    }
    if (fn.has_body && !node.has_body) {
      node.path = fn.path;  // re-anchor onto the first definition
      node.line = fn.line;
      node.has_body = true;
    }
    node.mask |= fn.mask;
    node.is_virtual = node.is_virtual || fn.is_virtual;
    if (fn.is_override && !node.is_override) {
      node.is_override = true;
      node.ovr_path = fn.path;
      node.ovr_line = fn.line;
    }
    node.calls.insert(node.calls.end(), fn.calls.begin(), fn.calls.end());
    node.prims.insert(node.prims.end(), fn.prims.begin(), fn.prims.end());
    node.acquires.insert(node.acquires.end(), fn.acquires.begin(),
                         fn.acquires.end());
    node.natives.insert(node.natives.end(), fn.natives.begin(),
                        fn.natives.end());
    node.accesses.insert(node.accesses.end(), fn.accesses.begin(),
                         fn.accesses.end());
    append_unique(&node.requires_locks, fn.requires_locks);
    append_unique(&node.excludes_locks, fn.excludes_locks);
  }
  std::vector<FuncNode> nodes;
  nodes.reserve(merged.size());
  for (auto& [qual, node] : merged) nodes.push_back(std::move(node));
  return nodes;
}

Analysis::Analysis(std::vector<FuncNode> nodes) : nodes_(std::move(nodes)) {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    by_qual_[nodes_[i].qual] = i;
    by_last_[nodes_[i].last].push_back(i);
  }
}

std::vector<size_t> Analysis::Resolve(const CallSite& call) const {
  std::vector<size_t> out;
  if (call.kind == CallKind::kCtor || call.kind == CallKind::kQualified) {
    auto it = by_qual_.find(call.name);
    if (it != by_qual_.end()) {
      out.push_back(it->second);
      return out;
    }
    if (call.kind == CallKind::kCtor) return out;
    // `Base::Name(...)` with no exact hit: fall back to methods named
    // Name (Base may be an alias or a template instantiation).
  }
  const std::string& last = call.kind == CallKind::kQualified
                                ? call.name.substr(call.name.rfind(':') + 1)
                                : call.name;
  auto it = by_last_.find(last);
  if (it == by_last_.end()) return out;
  for (size_t idx : it->second) {
    const FuncNode& n = nodes_[idx];
    const bool is_method = n.qual != n.last;
    if ((call.kind == CallKind::kMethod ||
         call.kind == CallKind::kQualified) &&
        !is_method) {
      continue;  // `x.f(...)` cannot land on a free function
    }
    out.push_back(idx);
  }
  return out;
}

std::optional<Analysis::Trace> Analysis::Reach(size_t idx, unsigned e) {
  const auto key = std::make_pair(idx, e);
  auto memo_it = memo_.find(key);
  if (memo_it != memo_.end()) return memo_it->second;
  if (visiting_.count(key) > 0) return std::nullopt;
  visiting_.insert(key);
  std::optional<Trace> result;
  const FuncNode& node = nodes_[idx];
  for (const PrimHit& prim : node.prims) {
    if ((prim.mask & e) != 0) {
      result = Trace{&prim, {idx}};
      break;
    }
  }
  if (!result) {
    for (const CallSite& call : node.calls) {
      for (size_t cand : Resolve(call)) {
        if (cand == idx) continue;
        if ((nodes_[cand].mask & e) != 0) continue;  // trusted boundary
        if (std::optional<Trace> sub = Reach(cand, e)) {
          result = Trace{sub->prim, {}};
          result->chain.push_back(idx);
          result->chain.insert(result->chain.end(), sub->chain.begin(),
                               sub->chain.end());
          break;
        }
      }
      if (result) break;
    }
  }
  visiting_.erase(key);
  memo_[key] = result;
  return result;
}

std::string ChainText(const Analysis& a, const std::vector<size_t>& chain) {
  std::string out;
  for (size_t idx : chain) {
    if (!out.empty()) out += " -> ";
    out += a.nodes()[idx].qual;
  }
  return out;
}

}  // namespace cad_lint
