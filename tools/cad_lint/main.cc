// cad_lint — project-specific static analysis for the CAD tree.
//
// Usage:
//   cad_lint [--json | --fix-list] <file-or-dir>...
//   cad_lint --list-rules
//
// Scans .h/.hpp/.cc/.cpp files (directories recurse; build/ and dot-dirs are
// skipped), applies the rules in rules.h, and prints diagnostics with
// file:line positions. Exit code 0 means clean (suppressed findings do not
// fail the run), 1 means unsuppressed violations, 2 means usage or I/O
// error — so both CI and `ctest` can gate on it directly.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <iterator>
#include <sstream>
#include <string>
#include <vector>

#include "concurrency.h"
#include "realtime.h"
#include "rules.h"

namespace cad_lint {
namespace {

namespace fs = std::filesystem;

constexpr std::string_view kUsage =
    "usage: cad_lint [--json | --fix-list] <file-or-dir>...\n"
    "       cad_lint --list-rules\n"
    "\n"
    "  --json       machine-readable report (all findings, incl. "
    "suppressed)\n"
    "  --fix-list   tab-separated worklist: path line rule status "
    "suggestion\n"
    "  --list-rules print the rule catalog and exit\n";

bool LintableExtension(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp";
}

bool SkippedDir(const fs::path& path) {
  const std::string name = path.filename().string();
  return name == "build" || (!name.empty() && name.front() == '.');
}

// Expands files/directories into a sorted, deduplicated file list so the
// report (and therefore CI diffs) are byte-stable across runs.
bool CollectFiles(const std::vector<std::string>& inputs,
                  std::vector<std::string>* files) {
  for (const std::string& input : inputs) {
    std::error_code ec;
    if (fs::is_directory(input, ec)) {
      fs::recursive_directory_iterator it(
          input, fs::directory_options::skip_permission_denied, ec);
      if (ec) {
        std::cerr << "cad_lint: cannot read directory " << input << ": "
                  << ec.message() << "\n";
        return false;
      }
      for (auto end = fs::end(it); it != end; it.increment(ec)) {
        if (ec) break;
        if (it->is_directory() && SkippedDir(it->path())) {
          it.disable_recursion_pending();
          continue;
        }
        if (it->is_regular_file() && LintableExtension(it->path())) {
          files->push_back(it->path().generic_string());
        }
      }
    } else if (fs::is_regular_file(input, ec)) {
      files->push_back(fs::path(input).generic_string());
    } else {
      std::cerr << "cad_lint: no such file or directory: " << input << "\n";
      return false;
    }
  }
  std::sort(files->begin(), files->end());
  files->erase(std::unique(files->begin(), files->end()), files->end());
  return true;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void PrintJson(const std::vector<Finding>& findings, size_t files_scanned,
               size_t violations, size_t suppressed) {
  std::ostringstream out;
  out << "{\"tool\":\"cad_lint\",\"version\":1,\"files_scanned\":"
      << files_scanned << ",\"violations\":" << violations
      << ",\"suppressed\":" << suppressed << ",\"findings\":[";
  for (size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (i > 0) out << ",";
    out << "{\"path\":\"" << JsonEscape(f.path) << "\",\"line\":" << f.line
        << ",\"rule\":\"" << f.rule << "\",\"message\":\""
        << JsonEscape(f.message) << "\",\"suggestion\":\""
        << JsonEscape(f.suggestion) << "\",\"suppressed\":"
        << (f.suppressed ? "true" : "false") << "}";
  }
  out << "]}";
  std::cout << out.str() << "\n";
}

void PrintFixList(const std::vector<Finding>& findings) {
  for (const Finding& f : findings) {
    std::cout << f.path << "\t" << f.line << "\t" << f.rule << "\t"
              << (f.suppressed ? "suppressed" : "active") << "\t"
              << f.suggestion << "\n";
  }
}

void PrintHuman(const std::vector<Finding>& findings, size_t files_scanned,
                size_t violations, size_t suppressed) {
  for (const Finding& f : findings) {
    if (f.suppressed) continue;
    std::cout << f.path << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n    fix: " << f.suggestion << "\n";
  }
  std::cout << "cad_lint: " << files_scanned << " files, " << violations
            << " violation" << (violations == 1 ? "" : "s") << ", "
            << suppressed << " suppressed\n";
}

int Run(int argc, char** argv) {
  bool json = false;
  bool fix_list = false;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--fix-list") {
      fix_list = true;
    } else if (arg == "--list-rules") {
      for (const RuleInfo& rule : Rules()) {
        std::cout << rule.id << "  " << rule.summary << "\n";
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    } else if (!arg.empty() && arg.front() == '-') {
      std::cerr << "cad_lint: unknown flag " << arg << "\n" << kUsage;
      return 2;
    } else {
      inputs.push_back(arg);
    }
  }
  if (json && fix_list) {
    std::cerr << "cad_lint: --json and --fix-list are mutually exclusive\n";
    return 2;
  }
  if (inputs.empty()) {
    std::cerr << kUsage;
    return 2;
  }

  std::vector<std::string> files;
  if (!CollectFiles(inputs, &files)) return 2;

  // The single-file rules run per file; the realtime rules CL007/CL008 need
  // every source at once (a core/ hot-path annotation is only provable by
  // reading the graph/ and stats/ bodies it calls into), so keep the
  // sources around for one tree-wide pass at the end.
  std::vector<Finding> findings;
  std::vector<FileInput> tree;
  tree.reserve(files.size());
  for (const std::string& path : files) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::cerr << "cad_lint: cannot open " << path << "\n";
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    tree.push_back(FileInput{path, buf.str()});
    std::vector<Finding> file_findings = LintSource(path, tree.back().source);
    findings.insert(findings.end(),
                    std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
  }
  std::vector<Finding> realtime_findings = LintRealtime(tree);
  findings.insert(findings.end(),
                  std::make_move_iterator(realtime_findings.begin()),
                  std::make_move_iterator(realtime_findings.end()));
  std::vector<Finding> concurrency_findings = LintConcurrency(tree);
  findings.insert(findings.end(),
                  std::make_move_iterator(concurrency_findings.begin()),
                  std::make_move_iterator(concurrency_findings.end()));
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });

  size_t violations = 0;
  size_t suppressed = 0;
  for (const Finding& f : findings) {
    if (f.suppressed) {
      ++suppressed;
    } else {
      ++violations;
    }
  }

  if (json) {
    PrintJson(findings, files.size(), violations, suppressed);
  } else if (fix_list) {
    PrintFixList(findings);
  } else {
    PrintHuman(findings, files.size(), violations, suppressed);
  }
  return violations == 0 ? 0 : 1;
}

}  // namespace
}  // namespace cad_lint

int main(int argc, char** argv) { return cad_lint::Run(argc, argv); }
