// Shared token-level extraction and call-graph machinery for the tree-wide
// rules: CL007/CL008 (realtime.cc) and CL009–CL011 (concurrency.cc).
//
// One pass per file turns the token stream into ParsedFn records — function
// declarations/definitions with their annotations, call sites, banned
// primitives, and (for the concurrency rules) the set of mutexes held at
// every point, derived from `MutexLock`-family RAII declarations. Merging
// by qualified name yields FuncNode records, and Analysis resolves call
// sites and answers memoized reachability queries over the merged graph.
//
// Lock-expression canonicalization: a bare member like `mu_` becomes
// "Class::mu_" using the enclosing class (or the explicit `Class::`
// qualifier of an out-of-line definition), so the same lock gets the same
// key from the header that declares it and the .cc that locks it. Dotted
// subjects (`errors.mu`) keep their object prefix — they name an instance,
// not a class-wide lock. A trailing `.native()` is stripped: a
// `std::unique_lock` over `mu_.native()` holds the same underlying mutex.
//
// Member-call chains off temporaries (`weak.lock().use()`, `x->lock()`)
// never open a held scope: only a *declaration* of a lock type with a
// variable name does. The regression fixtures under tests/lint_fixtures/
// (cl009_chain_*) pin this down.
#ifndef CAD_TOOLS_CAD_LINT_CALLGRAPH_H_
#define CAD_TOOLS_CAD_LINT_CALLGRAPH_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "lexer.h"

namespace cad_lint {

// Effect bits. CAD_REALTIME / CAD_REALTIME_AUDITED forbid both;
// CAD_NONALLOCATING forbids only allocation, CAD_NONBLOCKING only blocking.
inline constexpr unsigned kEffAlloc = 1u;
inline constexpr unsigned kEffBlock = 2u;

unsigned AnnotationMask(const std::string& t);
std::string EffectVerb(unsigned effect);

bool TokIs(const std::vector<Token>& toks, size_t i, std::string_view text);
bool IsIdent(const std::vector<Token>& toks, size_t i);

// Macro-convention names (CAD_CHECK, EXPECT_EQ, GUARDED_BY) are neither
// call targets nor declarators; their *arguments* still get scanned.
bool IsMacroish(const std::string& t);

const std::set<std::string_view>& NonCallKeywords();

struct Primitive {
  unsigned mask = 0;
  std::string label;
};

// The banned-primitive catalog (see realtime.h for the policy notes that
// shape it). `i` must index a token of `toks`.
std::optional<Primitive> MatchPrimitive(const std::vector<Token>& toks,
                                        size_t i);

enum class CallKind {
  kFree,       // plain `Name(` — free function or unqualified self-call
  kMethod,     // `obj.Name(` / `ptr->Name(` — methods only
  kQualified,  // `Class::Name(` — exact, falling back to methods
  kCtor,       // `Type var(...)` / `Type var{...}` / `Type var;` — exact only
};

struct CallSite {
  std::string name;  // "Name" or "Class::Name"
  CallKind kind = CallKind::kFree;
  std::string path;
  int line = 0;
  std::vector<std::string> held;  // canonical lock keys held at the call
  // kMethod only: the receiver identifier ("this", "engine_"), or "" when
  // the call chains off a temporary (`f().g()`) — name-based resolution
  // must not pin another class's REQUIRES/EXCLUDES contract on those.
  std::string recv;
};

struct PrimHit {
  std::string label;
  unsigned mask = 0;
  std::string path;
  int line = 0;
  std::vector<std::string> held;      // canonical lock keys held at the site
  bool sanctioned_wait = false;       // cv wait through a unique_lock var
};

// One `MutexLock`-family acquisition inside a body.
struct LockAcquire {
  std::string key;  // canonical lock key ("Class::mu_", "errors.mu")
  std::string path;
  int line = 0;
  std::vector<std::string> held;  // keys already held when this one opens
};

// One `.native()` / `->native()` escape-hatch use inside a body.
struct NativeUse {
  std::string path;
  int line = 0;
  bool sanctioned = false;  // part of a unique_lock-over-native() wait idiom
};

// A guarded-member access inside a body. `object` is empty for implicit-
// this accesses (`buffer_`), or the dotted prefix for explicit ones
// (`errors` in `errors.first_error`).
struct MemberAccess {
  std::string name;
  std::string object;
  std::string path;
  int line = 0;
  std::vector<std::string> held;
};

// One function declaration or definition as parsed from one file.
struct ParsedFn {
  std::string qual;  // "Class::Name" or "Name"
  std::string last;  // "Name"
  std::string cls;   // enclosing class ("" for free functions)
  std::string path;
  int line = 0;
  unsigned mask = 0;
  bool is_virtual = false;
  bool is_override = false;
  bool has_body = false;
  std::vector<CallSite> calls;
  std::vector<PrimHit> prims;
  std::vector<LockAcquire> acquires;
  std::vector<NativeUse> natives;
  std::vector<MemberAccess> accesses;
  std::vector<std::string> requires_locks;  // canonical keys from REQUIRES()
  std::vector<std::string> excludes_locks;  // canonical keys from EXCLUDES()
};

// One `member GUARDED_BY(mutex)` declaration inside a class body.
struct GuardedMember {
  std::string cls;
  std::string member;
  std::string guard_key;  // canonical ("Class::mu_")
  std::string path;
  int line = 0;
};

// Everything one file contributes to the tree-wide analyses.
struct ParsedFile {
  std::vector<ParsedFn> fns;
  std::vector<GuardedMember> guarded;
};

// Parses one lexed file, appending into `out`.
void ParseFile(const std::string& path, const LexedFile& lex,
               ParsedFile* out);

// Merged view of every declaration/definition of one qualified name.
struct FuncNode {
  std::string qual;
  std::string last;
  std::string cls;
  std::string path;  // anchor: first definition if any, else first decl
  int line = 0;
  unsigned mask = 0;
  bool is_virtual = false;
  bool is_override = false;
  bool has_body = false;
  std::string ovr_path;  // location of the decl carrying `override`
  int ovr_line = 0;
  std::vector<CallSite> calls;
  std::vector<PrimHit> prims;
  std::vector<LockAcquire> acquires;
  std::vector<NativeUse> natives;
  std::vector<MemberAccess> accesses;
  std::vector<std::string> requires_locks;
  std::vector<std::string> excludes_locks;
};

// Merges by qualified name; the anchor position prefers the first
// definition (sorted by path/line) so diagnostics point at code, not at
// forward declarations.
std::vector<FuncNode> MergeParsedFns(std::vector<ParsedFn> parsed);

class Analysis {
 public:
  explicit Analysis(std::vector<FuncNode> nodes);

  // Candidate callee node indices for one call site.
  std::vector<size_t> Resolve(const CallSite& call) const;

  struct Trace {
    const PrimHit* prim = nullptr;
    std::vector<size_t> chain;  // node indices from callee down to prim owner
  };

  // Can `idx` (an *unannotated-for-e* function) reach a primitive with
  // effect `e` through in-tree callees? Annotated-for-e callees are trusted
  // boundaries: their own root walk covers them. Cycles resolve optimistic
  // (in-progress nodes report "no"), which is fine for a linter and exact
  // for this tree (the hot path is non-recursive).
  std::optional<Trace> Reach(size_t idx, unsigned e);

  const std::vector<FuncNode>& nodes() const { return nodes_; }

 private:
  std::vector<FuncNode> nodes_;
  std::map<std::string, size_t> by_qual_;
  std::map<std::string, std::vector<size_t>> by_last_;
  std::map<std::pair<size_t, unsigned>, std::optional<Trace>> memo_;
  std::set<std::pair<size_t, unsigned>> visiting_;
};

std::string ChainText(const Analysis& a, const std::vector<size_t>& chain);

}  // namespace cad_lint

#endif  // CAD_TOOLS_CAD_LINT_CALLGRAPH_H_
