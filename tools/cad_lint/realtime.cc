#include "realtime.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "lexer.h"

namespace cad_lint {

namespace {

// Effect bits. CAD_REALTIME / CAD_REALTIME_AUDITED forbid both;
// CAD_NONALLOCATING forbids only allocation, CAD_NONBLOCKING only blocking.
constexpr unsigned kEffAlloc = 1u;
constexpr unsigned kEffBlock = 2u;

unsigned AnnotationMask(const std::string& t) {
  if (t == "CAD_REALTIME" || t == "CAD_REALTIME_AUDITED") {
    return kEffAlloc | kEffBlock;
  }
  if (t == "CAD_NONALLOCATING") return kEffAlloc;
  if (t == "CAD_NONBLOCKING") return kEffBlock;
  return 0;
}

std::string EffectVerb(unsigned effect) {
  return effect == kEffAlloc ? "allocate" : "block";
}

bool TokIs(const std::vector<Token>& toks, size_t i, std::string_view text) {
  return i < toks.size() && toks[i].text == text;
}

bool IsIdent(const std::vector<Token>& toks, size_t i) {
  return i < toks.size() && toks[i].kind == TokKind::kIdentifier;
}

// Macro-convention names (CAD_CHECK, EXPECT_EQ, GUARDED_BY) are neither
// call targets nor declarators; their *arguments* still get scanned.
bool IsMacroish(const std::string& t) {
  bool has_alpha = false;
  for (char c : t) {
    if (std::islower(static_cast<unsigned char>(c))) return false;
    if (std::isalpha(static_cast<unsigned char>(c))) has_alpha = true;
  }
  return has_alpha && t.size() >= 2;
}

const std::set<std::string_view>& NonCallKeywords() {
  static const std::set<std::string_view> kSet = {
      "if",       "for",      "while",    "switch",   "return",
      "sizeof",   "alignof",  "alignas",  "decltype", "noexcept",
      "catch",    "assert",   "defined",  "throw",    "new",
      "delete",   "void",     "int",      "bool",     "char",
      "double",   "float",    "long",     "short",    "unsigned",
      "signed",   "auto",     "explicit", "operator", "static_assert",
      "co_await", "co_return"};
  return kSet;
}

struct Primitive {
  unsigned mask = 0;
  std::string label;
};

// The banned-primitive catalog. Policy notes that shape it:
//  * `assign` / `resize` / `clear` are NOT banned: they are the sanctioned
//    Clear()-and-reuse idiom — size changes within capacity retained across
//    rounds. The alloc-hook tests are the enforcement that capacity really
//    is retained; CL007 bans the ops that *request* growth (push_back,
//    insert, reserve, ...).
//  * `throw` counts as both effects: the exception object is
//    heap-allocated and unwinding is unbounded.
//  * iostream / stdio count as both: they take libc locks and allocate
//    buffers.
std::optional<Primitive> MatchPrimitive(const std::vector<Token>& toks,
                                        size_t i) {
  if (toks[i].kind != TokKind::kIdentifier) return std::nullopt;
  const std::string& t = toks[i].text;
  const bool member =
      i > 0 && (TokIs(toks, i - 1, ".") || TokIs(toks, i - 1, "->"));
  const bool call = TokIs(toks, i + 1, "(");

  if (t == "new") {
    if (i > 0 && TokIs(toks, i - 1, "operator")) return std::nullopt;
    return Primitive{kEffAlloc, "new"};
  }
  if (t == "delete") {
    // `= delete` and `operator delete` declarations are not deallocations.
    if (i > 0 && (TokIs(toks, i - 1, "operator") || TokIs(toks, i - 1, "=")))
      return std::nullopt;
    return Primitive{kEffAlloc, "delete"};
  }
  if (t == "throw") return Primitive{kEffAlloc | kEffBlock, "throw"};

  static const std::set<std::string_view> kHeap = {
      "malloc", "calloc", "realloc", "free", "strdup", "aligned_alloc"};
  if (!member && call && kHeap.count(t) > 0) {
    return Primitive{kEffAlloc | kEffBlock, t};
  }
  if ((t == "make_unique" || t == "make_shared") &&
      (call || TokIs(toks, i + 1, "<"))) {
    return Primitive{kEffAlloc, t};
  }
  if (t == "to_string" && call && !member) {
    return Primitive{kEffAlloc, "to_string"};
  }
  if (t == "function" && TokIs(toks, i + 1, "<")) {
    return Primitive{kEffAlloc, "std::function"};
  }

  static const std::set<std::string_view> kGrow = {
      "push_back",  "emplace_back", "emplace", "emplace_front",
      "push_front", "insert",       "append",  "reserve"};
  if (member && call && kGrow.count(t) > 0) return Primitive{kEffAlloc, t};

  static const std::set<std::string_view> kLockTypes = {
      "MutexLock", "lock_guard", "unique_lock", "scoped_lock", "shared_lock"};
  if (kLockTypes.count(t) > 0) return Primitive{kEffBlock, t};
  if (member && call && t == "lock") return Primitive{kEffBlock, "lock()"};

  static const std::set<std::string_view> kWaits = {
      "sleep_for", "sleep_until", "wait", "wait_for", "wait_until", "join"};
  if (call && kWaits.count(t) > 0 &&
      (member || (i > 0 && TokIs(toks, i - 1, "::")))) {
    return Primitive{kEffBlock, t};
  }

  static const std::set<std::string_view> kStreamObjs = {"cout", "cerr",
                                                         "clog"};
  if (!member && kStreamObjs.count(t) > 0) {
    return Primitive{kEffAlloc | kEffBlock, "std::" + t};
  }
  static const std::set<std::string_view> kStdio = {
      "printf", "fprintf", "vfprintf", "puts",   "fputs", "fwrite", "fread",
      "fopen",  "fclose",  "fflush",   "getline", "system", "popen", "pclose"};
  if (call && kStdio.count(t) > 0) return Primitive{kEffAlloc | kEffBlock, t};
  static const std::set<std::string_view> kStreamTypes = {
      "ofstream",      "ifstream",      "fstream", "stringstream",
      "ostringstream", "istringstream"};
  if (kStreamTypes.count(t) > 0) {
    return Primitive{kEffAlloc | kEffBlock, t};
  }
  return std::nullopt;
}

enum class CallKind {
  kFree,       // plain `Name(` — free function or unqualified self-call
  kMethod,     // `obj.Name(` / `ptr->Name(` — methods only
  kQualified,  // `Class::Name(` — exact, falling back to methods
  kCtor,       // `Type var(...)` / `Type var{...}` / `Type var;` — exact only
};

struct CallSite {
  std::string name;  // "Name" or "Class::Name"
  CallKind kind = CallKind::kFree;
  std::string path;
  int line = 0;
};

struct PrimHit {
  std::string label;
  unsigned mask = 0;
  std::string path;
  int line = 0;
};

// One function declaration or definition as parsed from one file.
struct ParsedFn {
  std::string qual;  // "Class::Name" or "Name"
  std::string last;  // "Name"
  std::string path;
  int line = 0;
  unsigned mask = 0;
  bool is_virtual = false;
  bool is_override = false;
  bool has_body = false;
  std::vector<CallSite> calls;
  std::vector<PrimHit> prims;
};

// ---------------------------------------------------------------------------
// Declarator parsing: is this statement a function declaration/definition,
// and if so what is it called and how is it annotated?
// ---------------------------------------------------------------------------

struct DeclInfo {
  std::string name;         // "Name" or "~Name"
  std::string qual_prefix;  // "Class" when written `Class::Name`, else ""
  unsigned mask = 0;
  bool is_virtual = false;
  bool is_override = false;
};

// `stmt` holds token indices of one statement (everything since the last
// boundary, body brace excluded). The declarator is the first top-level
// `(` preceded by a plausible function name; rejected candidates (macro
// calls like GUARDED_BY, static_assert) are skipped past their matching
// `)` so their arguments cannot fake a declarator.
std::optional<DeclInfo> ParseDecl(const std::vector<Token>& toks,
                                  const std::vector<size_t>& stmt) {
  if (stmt.empty()) return std::nullopt;
  int paren = 0;
  size_t open = stmt.size();  // index *into stmt* of the declarator's "("
  for (size_t k = 0; k < stmt.size(); ++k) {
    const std::string& t = toks[stmt[k]].text;
    if (t == "(") {
      if (paren == 0) {
        bool ok = k > 0 && IsIdent(toks, stmt[k - 1]);
        if (ok) {
          const std::string& name = toks[stmt[k - 1]].text;
          ok = NonCallKeywords().count(name) == 0 && !IsMacroish(name);
        }
        if (ok) {
          open = k;
          break;
        }
      }
      ++paren;
      continue;
    }
    if (t == ")") {
      if (paren > 0) --paren;
      continue;
    }
    // A top-level `=` before the declarator means assignment or lambda,
    // and a control keyword means this is no declaration at all.
    if (paren == 0) {
      if (t == "=") return std::nullopt;
      if (toks[stmt[k]].kind == TokKind::kIdentifier &&
          (t == "if" || t == "for" || t == "while" || t == "switch" ||
           t == "catch" || t == "return" || t == "using" || t == "typedef" ||
           t == "friend" || t == "goto")) {
        return std::nullopt;
      }
    }
  }
  if (open >= stmt.size()) return std::nullopt;
  // The parameter list must close inside this statement.
  paren = 0;
  bool closed = false;
  for (size_t k = open; k < stmt.size(); ++k) {
    const std::string& t = toks[stmt[k]].text;
    if (t == "(") ++paren;
    if (t == ")" && --paren == 0) {
      closed = true;
      break;
    }
  }
  if (!closed) return std::nullopt;

  DeclInfo d;
  size_t name_at = open - 1;
  d.name = toks[stmt[name_at]].text;
  size_t before = name_at;  // index of the token just before the name
  if (name_at >= 1 && TokIs(toks, stmt[name_at - 1], "~")) {
    d.name = "~" + d.name;
    before = name_at - 1;
  }
  if (before >= 2 && TokIs(toks, stmt[before - 1], "::") &&
      IsIdent(toks, stmt[before - 2])) {
    const std::string& q = toks[stmt[before - 2]].text;
    // Uppercase qualifier = class; lowercase = namespace (project
    // convention), in which case the function is filed under its bare name.
    if (std::isupper(static_cast<unsigned char>(q[0]))) d.qual_prefix = q;
  }
  for (size_t k = 0; k < stmt.size(); ++k) {
    if (!IsIdent(toks, stmt[k])) continue;
    const std::string& t = toks[stmt[k]].text;
    d.mask |= AnnotationMask(t);
    if (t == "virtual") d.is_virtual = true;
    if (t == "override") d.is_override = true;
  }
  return d;
}

// ---------------------------------------------------------------------------
// Per-file extraction walk.
// ---------------------------------------------------------------------------

class FileParser {
 public:
  FileParser(std::string path, const LexedFile& lex,
             std::vector<ParsedFn>* out)
      : path_(std::move(path)), lex_(lex), out_(out) {}

  void Run() {
    const std::vector<Token>& toks = lex_.tokens;
    size_t skip_until = 0;  // exclusive token index: CAD_VALIDATE regions
    for (size_t i = 0; i < toks.size(); ++i) {
      const Token& tok = toks[i];
      if (tok.kind == TokKind::kDirective) {
        if (!InFunction()) ResetStmt();
        continue;
      }
      const std::string& t = tok.text;
      if (i >= skip_until && tok.kind == TokKind::kIdentifier &&
          (t == "CAD_VALIDATE" || t == "CAD_DCHECK") &&
          TokIs(toks, i + 1, "(")) {
        skip_until = SkipBalancedParens(toks, i + 1);
      }

      if (t == "{") {
        OnOpenBrace(i);
        continue;
      }
      if (t == "}") {
        OnCloseBrace();
        continue;
      }
      if (t == "(") ++paren_;
      if (t == ")") {
        if (paren_ > 0) --paren_;
        if (paren_ == 0) saw_close_ = true;
      }

      if (InFunction()) {
        if (i >= skip_until) RecordBodyToken(i);
        continue;
      }

      if (paren_ == 0) {
        if (t == ";") {
          OnStatementEnd();
          ResetStmt();
          continue;
        }
        if (t == ":" && tok.kind == TokKind::kPunct) {
          if (stmt_.size() == 1 && IsIdent(toks, stmt_[0]) &&
              (toks[stmt_[0]].text == "public" ||
               toks[stmt_[0]].text == "private" ||
               toks[stmt_[0]].text == "protected")) {
            ResetStmt();  // access label
            continue;
          }
          // After the parameter list closed, a lone `:` opens a
          // constructor initializer list.
          if (saw_close_ && !saw_eq_) ctor_init_ = true;
        }
        if (t == "=") saw_eq_ = true;
      }
      stmt_.push_back(i);
    }
  }

 private:
  struct Frame {
    char kind;  // 'N' namespace/extern/enum, 'C' class, 'F' function body,
                // 'O' other (control flow, init braces), 'I' ctor-member-init
    int fn = -1;
    std::string cls;
  };

  static size_t SkipBalancedParens(const std::vector<Token>& toks,
                                   size_t open) {
    int depth = 0;
    for (size_t j = open; j < toks.size(); ++j) {
      if (toks[j].text == "(") ++depth;
      if (toks[j].text == ")" && --depth == 0) return j + 1;
    }
    return open + 1;
  }

  bool InFunction() const {
    for (const Frame& f : frames_) {
      if (f.kind == 'F') return true;
    }
    return false;
  }

  ParsedFn* CurrentFn() {
    for (auto it = frames_.rbegin(); it != frames_.rend(); ++it) {
      if (it->kind == 'F') return &(*out_)[static_cast<size_t>(it->fn)];
    }
    return nullptr;
  }

  std::string EnclosingClass() const {
    for (auto it = frames_.rbegin(); it != frames_.rend(); ++it) {
      if (it->kind == 'C') return it->cls;
    }
    return "";
  }

  void ResetStmt() {
    stmt_.clear();
    ctor_init_ = false;
    saw_close_ = false;
    saw_eq_ = false;
  }

  // First identifier after the class keyword, skipping attribute-macro
  // arguments (CAPABILITY("mutex")) and base-class lists.
  std::string ClassNameFromStmt() const {
    const std::vector<Token>& toks = lex_.tokens;
    for (size_t k = 0; k < stmt_.size(); ++k) {
      const std::string& t = toks[stmt_[k]].text;
      if (t != "class" && t != "struct" && t != "union") continue;
      for (size_t j = k + 1; j < stmt_.size(); ++j) {
        if (!IsIdent(toks, stmt_[j])) continue;
        if (j + 1 < stmt_.size() && TokIs(toks, stmt_[j + 1], "(")) {
          int depth = 0;
          size_t m = j + 1;
          for (; m < stmt_.size(); ++m) {
            if (toks[stmt_[m]].text == "(") ++depth;
            if (toks[stmt_[m]].text == ")" && --depth == 0) break;
          }
          j = m;
          continue;
        }
        return toks[stmt_[j]].text;
      }
      break;
    }
    return "(anonymous)";
  }

  void RegisterFn(const DeclInfo& d, bool has_body, int line, int* fn_idx) {
    ParsedFn fn;
    fn.last = d.name;
    if (!d.qual_prefix.empty()) {
      fn.qual = d.qual_prefix + "::" + d.name;
    } else {
      const std::string cls = EnclosingClass();
      fn.qual = cls.empty() ? d.name : cls + "::" + d.name;
    }
    fn.path = path_;
    fn.line = line;
    fn.mask = d.mask;
    fn.is_virtual = d.is_virtual;
    fn.is_override = d.is_override;
    fn.has_body = has_body;
    out_->push_back(std::move(fn));
    if (fn_idx != nullptr) *fn_idx = static_cast<int>(out_->size()) - 1;
  }

  void OnStatementEnd() {
    // Declarations are only meaningful directly inside a class, a
    // namespace, or at the top level — not inside brace-initializers.
    if (!frames_.empty() && frames_.back().kind != 'C' &&
        frames_.back().kind != 'N') {
      return;
    }
    if (saw_eq_ && !saw_close_) return;  // variable with initializer
    std::optional<DeclInfo> d = ParseDecl(lex_.tokens, stmt_);
    if (!d) return;
    RegisterFn(*d, /*has_body=*/false, lex_.tokens[stmt_.front()].line,
               nullptr);
  }

  void OnOpenBrace(size_t i) {
    const std::vector<Token>& toks = lex_.tokens;
    if (paren_ > 0 || InFunction()) {
      frames_.push_back(Frame{'O', -1, ""});
      return;
    }
    // Member-init braces in a ctor initializer list (`: buf_{0} {`): the
    // statement continues past them; only the body brace closes it.
    if (ctor_init_ && i > 0 &&
        (toks[i - 1].kind == TokKind::kIdentifier ||
         toks[i - 1].text == ">")) {
      frames_.push_back(Frame{'I', -1, ""});
      return;
    }
    char kind = 'O';
    std::string cls;
    int fn_idx = -1;
    bool ns = false;
    bool classish = false;
    int paren = 0;
    for (size_t k = 0; k < stmt_.size(); ++k) {
      const Token& st = toks[stmt_[k]];
      if (st.text == "(") ++paren;
      if (st.text == ")" && paren > 0) --paren;
      if (paren != 0 || st.kind != TokKind::kIdentifier) continue;
      if (st.text == "namespace" || st.text == "extern" || st.text == "enum") {
        ns = true;
      }
      if (st.text == "class" || st.text == "struct" || st.text == "union") {
        classish = true;
      }
    }
    if (ns) {
      kind = 'N';
    } else if (classish && !saw_eq_) {
      kind = 'C';
      cls = ClassNameFromStmt();
    } else if (!saw_eq_ || saw_close_) {
      if (std::optional<DeclInfo> d = ParseDecl(toks, stmt_)) {
        kind = 'F';
        RegisterFn(*d, /*has_body=*/true, toks[stmt_.front()].line, &fn_idx);
      }
    }
    frames_.push_back(Frame{kind, fn_idx, cls});
    ResetStmt();
  }

  void OnCloseBrace() {
    if (frames_.empty()) {
      ResetStmt();
      return;
    }
    const char kind = frames_.back().kind;
    frames_.pop_back();
    // 'I' frames sit mid-statement; everything else ends one.
    if (kind != 'I') ResetStmt();
  }

  void RecordBodyToken(size_t i) {
    ParsedFn* fn = CurrentFn();
    if (fn == nullptr) return;
    const std::vector<Token>& toks = lex_.tokens;
    const Token& tok = toks[i];
    if (std::optional<Primitive> prim = MatchPrimitive(toks, i)) {
      fn->prims.push_back(
          PrimHit{prim->label, prim->mask, path_, tok.line});
      return;
    }
    if (tok.kind != TokKind::kIdentifier) return;
    const std::string& t = tok.text;
    if (NonCallKeywords().count(t) > 0 || IsMacroish(t)) return;

    // Constructor pattern: `Type var(` / `Type var{` / `Type var;`.
    if (std::isupper(static_cast<unsigned char>(t[0])) &&
        IsIdent(toks, i + 1) &&
        (TokIs(toks, i + 2, "(") || TokIs(toks, i + 2, "{") ||
         TokIs(toks, i + 2, ";"))) {
      fn->calls.push_back(
          CallSite{t + "::" + t, CallKind::kCtor, path_, tok.line});
      return;
    }
    if (!TokIs(toks, i + 1, "(")) return;
    if (i > 0 && (TokIs(toks, i - 1, ".") || TokIs(toks, i - 1, "->"))) {
      fn->calls.push_back(CallSite{t, CallKind::kMethod, path_, tok.line});
      return;
    }
    if (i > 1 && TokIs(toks, i - 1, "::") && IsIdent(toks, i - 2)) {
      const std::string& q = toks[i - 2].text;
      if (std::isupper(static_cast<unsigned char>(q[0]))) {
        fn->calls.push_back(
            CallSite{q + "::" + t, CallKind::kQualified, path_, tok.line});
      } else {
        fn->calls.push_back(CallSite{t, CallKind::kFree, path_, tok.line});
      }
      return;
    }
    fn->calls.push_back(CallSite{t, CallKind::kFree, path_, tok.line});
  }

  std::string path_;
  const LexedFile& lex_;
  std::vector<ParsedFn>* out_;
  std::vector<Frame> frames_;
  std::vector<size_t> stmt_;
  int paren_ = 0;
  bool ctor_init_ = false;
  bool saw_close_ = false;
  bool saw_eq_ = false;
};

// ---------------------------------------------------------------------------
// Call-graph analysis over the merged function set.
// ---------------------------------------------------------------------------

struct FuncNode {
  std::string qual;
  std::string last;
  std::string path;  // anchor: first definition if any, else first decl
  int line = 0;
  unsigned mask = 0;
  bool is_virtual = false;
  bool is_override = false;
  bool has_body = false;
  std::string ovr_path;  // location of the decl carrying `override`
  int ovr_line = 0;
  std::vector<CallSite> calls;
  std::vector<PrimHit> prims;
};

class Analysis {
 public:
  explicit Analysis(std::vector<FuncNode> nodes) : nodes_(std::move(nodes)) {
    for (size_t i = 0; i < nodes_.size(); ++i) {
      by_qual_[nodes_[i].qual] = i;
      by_last_[nodes_[i].last].push_back(i);
    }
  }

  std::vector<size_t> Resolve(const CallSite& call) const {
    std::vector<size_t> out;
    if (call.kind == CallKind::kCtor || call.kind == CallKind::kQualified) {
      auto it = by_qual_.find(call.name);
      if (it != by_qual_.end()) {
        out.push_back(it->second);
        return out;
      }
      if (call.kind == CallKind::kCtor) return out;
      // `Base::Name(...)` with no exact hit: fall back to methods named
      // Name (Base may be an alias or a template instantiation).
    }
    const std::string& last = call.kind == CallKind::kQualified
                                  ? call.name.substr(call.name.rfind(':') + 1)
                                  : call.name;
    auto it = by_last_.find(last);
    if (it == by_last_.end()) return out;
    for (size_t idx : it->second) {
      const FuncNode& n = nodes_[idx];
      const bool is_method = n.qual != n.last;
      if ((call.kind == CallKind::kMethod ||
           call.kind == CallKind::kQualified) &&
          !is_method) {
        continue;  // `x.f(...)` cannot land on a free function
      }
      out.push_back(idx);
    }
    return out;
  }

  struct Trace {
    const PrimHit* prim = nullptr;
    std::vector<size_t> chain;  // node indices from callee down to prim owner
  };

  // Can `idx` (an *unannotated-for-e* function) reach a primitive with
  // effect `e` through in-tree callees? Annotated-for-e callees are trusted
  // boundaries: their own root walk covers them. Cycles resolve optimistic
  // (in-progress nodes report "no"), which is fine for a linter and exact
  // for this tree (the hot path is non-recursive).
  std::optional<Trace> Reach(size_t idx, unsigned e) {
    const auto key = std::make_pair(idx, e);
    auto memo_it = memo_.find(key);
    if (memo_it != memo_.end()) return memo_it->second;
    if (visiting_.count(key) > 0) return std::nullopt;
    visiting_.insert(key);
    std::optional<Trace> result;
    const FuncNode& node = nodes_[idx];
    for (const PrimHit& prim : node.prims) {
      if ((prim.mask & e) != 0) {
        result = Trace{&prim, {idx}};
        break;
      }
    }
    if (!result) {
      for (const CallSite& call : node.calls) {
        for (size_t cand : Resolve(call)) {
          if (cand == idx) continue;
          if ((nodes_[cand].mask & e) != 0) continue;  // trusted boundary
          if (std::optional<Trace> sub = Reach(cand, e)) {
            result = Trace{sub->prim, {}};
            result->chain.push_back(idx);
            result->chain.insert(result->chain.end(), sub->chain.begin(),
                                 sub->chain.end());
            break;
          }
        }
        if (result) break;
      }
    }
    visiting_.erase(key);
    memo_[key] = result;
    return result;
  }

  const std::vector<FuncNode>& nodes() const { return nodes_; }

 private:
  std::vector<FuncNode> nodes_;
  std::map<std::string, size_t> by_qual_;
  std::map<std::string, std::vector<size_t>> by_last_;
  std::map<std::pair<size_t, unsigned>, std::optional<Trace>> memo_;
  std::set<std::pair<size_t, unsigned>> visiting_;
};

std::string ChainText(const Analysis& a, const std::vector<size_t>& chain) {
  std::string out;
  for (size_t idx : chain) {
    if (!out.empty()) out += " -> ";
    out += a.nodes()[idx].qual;
  }
  return out;
}

}  // namespace

std::vector<Finding> LintRealtime(const std::vector<FileInput>& files) {
  std::vector<ParsedFn> parsed;
  std::map<std::string, std::vector<Suppression>> sups;
  for (const FileInput& file : files) {
    const LexedFile lex = Lex(file.source);
    std::vector<Finding> ignored;  // CL000 is LintSource's report, not ours
    ParseSuppressions(lex, &sups[file.path], &ignored);
    FileParser(file.path, lex, &parsed).Run();
  }

  // Merge declarations and definitions by qualified name. The anchor
  // position prefers the first definition (sorted by path/line) so
  // diagnostics point at code, not at forward declarations.
  std::map<std::string, FuncNode> merged;
  std::stable_sort(parsed.begin(), parsed.end(),
                   [](const ParsedFn& a, const ParsedFn& b) {
                     if (a.path != b.path) return a.path < b.path;
                     return a.line < b.line;
                   });
  for (const ParsedFn& fn : parsed) {
    FuncNode& node = merged[fn.qual];
    if (node.qual.empty()) {
      node.qual = fn.qual;
      node.last = fn.last;
      node.path = fn.path;
      node.line = fn.line;
    }
    if (fn.has_body && !node.has_body) {
      node.path = fn.path;  // re-anchor onto the first definition
      node.line = fn.line;
      node.has_body = true;
    }
    node.mask |= fn.mask;
    node.is_virtual = node.is_virtual || fn.is_virtual;
    if (fn.is_override && !node.is_override) {
      node.is_override = true;
      node.ovr_path = fn.path;
      node.ovr_line = fn.line;
    }
    node.calls.insert(node.calls.end(), fn.calls.begin(), fn.calls.end());
    node.prims.insert(node.prims.end(), fn.prims.begin(), fn.prims.end());
  }
  std::vector<FuncNode> nodes;
  nodes.reserve(merged.size());
  for (auto& [qual, node] : merged) nodes.push_back(std::move(node));
  Analysis analysis(std::move(nodes));

  std::vector<Finding> findings;
  std::set<std::string> seen;  // dedup key per emitted finding
  const auto emit = [&](const std::string& path, int line,
                        const std::string& rule, const std::string& key,
                        const std::string& message,
                        const std::string& suggestion) {
    if (!seen.insert(rule + "|" + key).second) return;
    Finding f;
    f.path = path;
    f.line = line;
    f.rule = rule;
    f.message = message;
    f.suggestion = suggestion;
    auto it = sups.find(path);
    f.suppressed =
        it != sups.end() && IsSuppressed(it->second, rule, line);
    findings.push_back(std::move(f));
  };

  // Roots in deterministic order: every annotated function with a body.
  std::vector<size_t> roots;
  for (size_t i = 0; i < analysis.nodes().size(); ++i) {
    const FuncNode& n = analysis.nodes()[i];
    if (n.mask != 0 && n.has_body) roots.push_back(i);
  }
  std::sort(roots.begin(), roots.end(), [&](size_t a, size_t b) {
    const FuncNode& na = analysis.nodes()[a];
    const FuncNode& nb = analysis.nodes()[b];
    if (na.path != nb.path) return na.path < nb.path;
    if (na.line != nb.line) return na.line < nb.line;
    return na.qual < nb.qual;
  });

  const std::string cl007_fix =
      "move the work off the hot path, pre-reserve capacity during warm-up, "
      "or add `// cad-lint: allow(CL007) <reason>` at the primitive site";
  for (size_t root : roots) {
    const FuncNode& rn = analysis.nodes()[root];
    for (unsigned e : {kEffAlloc, kEffBlock}) {
      if ((rn.mask & e) == 0) continue;
      for (const PrimHit& prim : rn.prims) {
        if ((prim.mask & e) == 0) continue;
        emit(prim.path, prim.line, "CL007",
             prim.path + ":" + std::to_string(prim.line) + ":" + prim.label +
                 ":" + std::to_string(e),
             "realtime-annotated `" + rn.qual + "` may not " + EffectVerb(e) +
                 " but uses `" + prim.label + "` here",
             cl007_fix);
      }
      for (const CallSite& call : rn.calls) {
        for (size_t cand : analysis.Resolve(call)) {
          if (cand == root) continue;
          const FuncNode& cn = analysis.nodes()[cand];
          if ((cn.mask & e) != 0) continue;  // compatible annotation
          if (cn.mask != 0) {
            // Annotated, but the contract is weaker than the caller's.
            emit(call.path, call.line, "CL008",
                 call.path + ":" + std::to_string(call.line) + ":" + cn.qual +
                     ":" + std::to_string(e),
                 "`" + rn.qual + "` may not " + EffectVerb(e) + " but calls `" +
                     cn.qual +
                     "`, whose realtime annotation does not forbid it",
                 "strengthen `" + cn.qual +
                     "`'s annotation (or weaken the caller's) so the "
                     "contracts agree");
          }
          if (std::optional<Analysis::Trace> trace = analysis.Reach(cand, e)) {
            std::vector<size_t> chain;
            chain.push_back(root);
            chain.insert(chain.end(), trace->chain.begin(),
                         trace->chain.end());
            emit(trace->prim->path, trace->prim->line, "CL007",
                 trace->prim->path + ":" + std::to_string(trace->prim->line) +
                     ":" + trace->prim->label + ":" + std::to_string(e),
                 "realtime-annotated `" + rn.qual + "` may not " +
                     EffectVerb(e) + " but reaches `" + trace->prim->label +
                     "` here (call path: " + ChainText(analysis, chain) + ")",
                 cl007_fix);
          }
        }
      }
    }
  }

  // CL008, override shape: an override may not drop the realtime contract
  // its virtual base declares. Grouped by unqualified name; strengthening
  // is always allowed.
  std::map<std::string, unsigned> base_mask;
  for (const FuncNode& n : analysis.nodes()) {
    if (n.is_virtual && !n.is_override) base_mask[n.last] |= n.mask;
  }
  for (const FuncNode& n : analysis.nodes()) {
    if (!n.is_override) continue;
    auto it = base_mask.find(n.last);
    if (it == base_mask.end()) continue;
    const unsigned missing = it->second & ~n.mask;
    if (missing == 0) continue;
    const std::string what =
        missing == (kEffAlloc | kEffBlock)
            ? "allocate or block"
            : EffectVerb(missing == kEffAlloc ? kEffAlloc : kEffBlock);
    emit(n.ovr_path, n.ovr_line, "CL008", n.ovr_path + ":override:" + n.qual,
         "`" + n.qual +
             "` overrides a virtual whose realtime annotation forbids it to " +
             what + ", but drops that annotation",
         "carry the base declaration's realtime annotation on the override");
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.message < b.message;
            });
  return findings;
}

}  // namespace cad_lint
