#include "realtime.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "callgraph.h"
#include "lexer.h"

namespace cad_lint {

std::vector<Finding> LintRealtime(const std::vector<FileInput>& files) {
  ParsedFile parsed;
  std::map<std::string, std::vector<Suppression>> sups;
  for (const FileInput& file : files) {
    const LexedFile lex = Lex(file.source);
    std::vector<Finding> ignored;  // CL000 is LintSource's report, not ours
    ParseSuppressions(lex, &sups[file.path], &ignored);
    ParseFile(file.path, lex, &parsed);
  }
  Analysis analysis(MergeParsedFns(std::move(parsed.fns)));

  std::vector<Finding> findings;
  std::set<std::string> seen;  // dedup key per emitted finding
  const auto emit = [&](const std::string& path, int line,
                        const std::string& rule, const std::string& key,
                        const std::string& message,
                        const std::string& suggestion) {
    if (!seen.insert(rule + "|" + key).second) return;
    Finding f;
    f.path = path;
    f.line = line;
    f.rule = rule;
    f.message = message;
    f.suggestion = suggestion;
    auto it = sups.find(path);
    f.suppressed =
        it != sups.end() && IsSuppressed(it->second, rule, line);
    findings.push_back(std::move(f));
  };

  // Roots in deterministic order: every annotated function with a body.
  std::vector<size_t> roots;
  for (size_t i = 0; i < analysis.nodes().size(); ++i) {
    const FuncNode& n = analysis.nodes()[i];
    if (n.mask != 0 && n.has_body) roots.push_back(i);
  }
  std::sort(roots.begin(), roots.end(), [&](size_t a, size_t b) {
    const FuncNode& na = analysis.nodes()[a];
    const FuncNode& nb = analysis.nodes()[b];
    if (na.path != nb.path) return na.path < nb.path;
    if (na.line != nb.line) return na.line < nb.line;
    return na.qual < nb.qual;
  });

  const std::string cl007_fix =
      "move the work off the hot path, pre-reserve capacity during warm-up, "
      "or add `// cad-lint: allow(CL007) <reason>` at the primitive site";
  for (size_t root : roots) {
    const FuncNode& rn = analysis.nodes()[root];
    for (unsigned e : {kEffAlloc, kEffBlock}) {
      if ((rn.mask & e) == 0) continue;
      for (const PrimHit& prim : rn.prims) {
        if ((prim.mask & e) == 0) continue;
        emit(prim.path, prim.line, "CL007",
             prim.path + ":" + std::to_string(prim.line) + ":" + prim.label +
                 ":" + std::to_string(e),
             "realtime-annotated `" + rn.qual + "` may not " + EffectVerb(e) +
                 " but uses `" + prim.label + "` here",
             cl007_fix);
      }
      for (const CallSite& call : rn.calls) {
        for (size_t cand : analysis.Resolve(call)) {
          if (cand == root) continue;
          const FuncNode& cn = analysis.nodes()[cand];
          if ((cn.mask & e) != 0) continue;  // compatible annotation
          if (cn.mask != 0) {
            // Annotated, but the contract is weaker than the caller's.
            emit(call.path, call.line, "CL008",
                 call.path + ":" + std::to_string(call.line) + ":" + cn.qual +
                     ":" + std::to_string(e),
                 "`" + rn.qual + "` may not " + EffectVerb(e) + " but calls `" +
                     cn.qual +
                     "`, whose realtime annotation does not forbid it",
                 "strengthen `" + cn.qual +
                     "`'s annotation (or weaken the caller's) so the "
                     "contracts agree");
          }
          if (std::optional<Analysis::Trace> trace = analysis.Reach(cand, e)) {
            std::vector<size_t> chain;
            chain.push_back(root);
            chain.insert(chain.end(), trace->chain.begin(),
                         trace->chain.end());
            emit(trace->prim->path, trace->prim->line, "CL007",
                 trace->prim->path + ":" + std::to_string(trace->prim->line) +
                     ":" + trace->prim->label + ":" + std::to_string(e),
                 "realtime-annotated `" + rn.qual + "` may not " +
                     EffectVerb(e) + " but reaches `" + trace->prim->label +
                     "` here (call path: " + ChainText(analysis, chain) + ")",
                 cl007_fix);
          }
        }
      }
    }
  }

  // CL008, override shape: an override may not drop the realtime contract
  // its virtual base declares. Grouped by unqualified name; strengthening
  // is always allowed.
  std::map<std::string, unsigned> base_mask;
  for (const FuncNode& n : analysis.nodes()) {
    if (n.is_virtual && !n.is_override) base_mask[n.last] |= n.mask;
  }
  for (const FuncNode& n : analysis.nodes()) {
    if (!n.is_override) continue;
    auto it = base_mask.find(n.last);
    if (it == base_mask.end()) continue;
    const unsigned missing = it->second & ~n.mask;
    if (missing == 0) continue;
    const std::string what =
        missing == (kEffAlloc | kEffBlock)
            ? "allocate or block"
            : EffectVerb(missing == kEffAlloc ? kEffAlloc : kEffBlock);
    emit(n.ovr_path, n.ovr_line, "CL008", n.ovr_path + ":override:" + n.qual,
         "`" + n.qual +
             "` overrides a virtual whose realtime annotation forbids it to " +
             what + ", but drops that annotation",
         "carry the base declaration's realtime annotation on the override");
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.message < b.message;
            });
  return findings;
}

}  // namespace cad_lint
