#include "lexer.h"

#include <array>
#include <cctype>

namespace cad_lint {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Multi-character punctuators, longest first so maximal munch falls out of
// the scan order. `==`/`<=`/`+=` must not decompose into `=`-containing
// pairs or the side-effect rule would flag comparisons.
// `.*` (pointer-to-member through object) must lex as one token like its
// siblings `->*` and `::*` — split into `.` `*` it reads as a member access,
// and a downstream member-chain walk (CL009's held-set tracking) would see
// a phantom `.`-chain. Plain `.` stays single-char (it is not listed; the
// fallthrough emits it), and `.5`-style floats are consumed by LexNumber
// before punctuation is tried.
constexpr std::array<std::string_view, 37> kPuncts = {
    "<<=", ">>=", "->*", "...", "::*",
    "::",  "->",  ".*",  "++",  "--",  "<<", ">>", "<=", ">=", "==", "!=",
    "&&",  "||",  "+=",  "-=",  "*=",  "/=", "%=", "&=", "|=", "^=",
    "##",  "<",   ">",   "=",   "+",   "-",  "!",  "&",  "|",  "^",  "%"};

class Lexer {
 public:
  explicit Lexer(std::string_view source) : src_(source) {}

  LexedFile Run() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        at_line_start_ = true;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (c == '/' && Peek(1) == '/') {
        LexLineComment();
        continue;
      }
      if (c == '/' && Peek(1) == '*') {
        LexBlockComment();
        continue;
      }
      if (c == '#' && at_line_start_) {
        LexDirective();
        continue;
      }
      at_line_start_ = false;
      if (IsIdentStart(c)) {
        LexIdentifierOrLiteralPrefix();
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '.' && std::isdigit(static_cast<unsigned char>(Peek(1))))) {
        LexNumber();
        continue;
      }
      if (c == '"') {
        LexString(/*raw=*/false);
        continue;
      }
      if (c == '\'') {
        LexCharLit();
        continue;
      }
      LexPunct();
    }
    out_.n_lines = line_;
    return std::move(out_);
  }

 private:
  char Peek(size_t ahead) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  void Emit(TokKind kind, std::string text, int line) {
    out_.tokens.push_back(Token{kind, std::move(text), line});
  }

  void LexLineComment() {
    const int start_line = line_;
    pos_ += 2;
    const size_t begin = pos_;
    while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
    out_.comments.push_back(Comment{
        std::string(src_.substr(begin, pos_ - begin)), start_line, start_line});
  }

  void LexBlockComment() {
    const int start_line = line_;
    pos_ += 2;
    const size_t begin = pos_;
    size_t end = begin;
    while (pos_ < src_.size()) {
      if (src_[pos_] == '*' && Peek(1) == '/') {
        end = pos_;
        pos_ += 2;
        break;
      }
      if (src_[pos_] == '\n') ++line_;
      ++pos_;
      end = pos_;
    }
    out_.comments.push_back(
        Comment{std::string(src_.substr(begin, end - begin)), start_line,
                line_});
  }

  void LexDirective() {
    const int start_line = line_;
    const size_t begin = pos_;
    while (pos_ < src_.size()) {
      if (src_[pos_] == '\\' && Peek(1) == '\n') {  // line continuation
        pos_ += 2;
        ++line_;
        continue;
      }
      if (src_[pos_] == '\n') break;
      // Comments may trail a directive; stop the directive text there.
      if (src_[pos_] == '/' && (Peek(1) == '/' || Peek(1) == '*')) break;
      ++pos_;
    }
    Emit(TokKind::kDirective, std::string(src_.substr(begin, pos_ - begin)),
         start_line);
  }

  void LexIdentifierOrLiteralPrefix() {
    const size_t begin = pos_;
    while (pos_ < src_.size() && IsIdentChar(src_[pos_])) ++pos_;
    std::string text(src_.substr(begin, pos_ - begin));
    // String-literal prefixes: R"...", u8"...", L'...' etc. Only the exact
    // raw prefixes of the grammar count — an arbitrary identifier ending in
    // R adjacent to a string (`"%" PRIuPTR "\n"`) is macro concatenation,
    // and treating it as a raw string would swallow source until the next
    // `)"` (or EOF), derailing every rule downstream.
    const bool raw = text == "R" || text == "uR" || text == "u8R" ||
                     text == "UR" || text == "LR";
    if (pos_ < src_.size() && src_[pos_] == '"' &&
        (raw || text == "u8" || text == "u" || text == "U" || text == "L")) {
      LexString(raw);
      return;
    }
    if (pos_ < src_.size() && src_[pos_] == '\'' &&
        (text == "u8" || text == "u" || text == "U" || text == "L")) {
      LexCharLit();
      return;
    }
    Emit(TokKind::kIdentifier, std::move(text), line_);
  }

  void LexNumber() {
    const int start_line = line_;
    const size_t begin = pos_;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (IsIdentChar(c) || c == '.') {
        ++pos_;
        continue;
      }
      // Digit separators (1'000, 0xFF'FF): the quote belongs to the number
      // when flanked by digit characters; otherwise it opens a char literal.
      if (c == '\'' && IsIdentChar(Peek(1))) {
        pos_ += 2;
        continue;
      }
      // Exponent signs: 1e-5, 0x1.8p+3.
      if ((c == '+' || c == '-') && pos_ > begin) {
        const char prev = src_[pos_ - 1];
        if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
          ++pos_;
          continue;
        }
      }
      break;
    }
    Emit(TokKind::kNumber, std::string(src_.substr(begin, pos_ - begin)),
         start_line);
  }

  void LexString(bool raw) {
    const int start_line = line_;
    ++pos_;  // consume the opening quote
    std::string delim;
    if (raw) {
      while (pos_ < src_.size() && src_[pos_] != '(') {
        delim += src_[pos_++];
      }
      if (pos_ < src_.size()) ++pos_;  // consume '('
    }
    const size_t begin = pos_;
    size_t end = begin;
    while (pos_ < src_.size()) {
      if (raw) {
        if (src_[pos_] == ')' &&
            src_.substr(pos_ + 1, delim.size()) == delim &&
            Peek(1 + delim.size()) == '"') {
          end = pos_;
          pos_ += 2 + delim.size();
          break;
        }
        if (src_[pos_] == '\n') ++line_;
        ++pos_;
        end = pos_;
        continue;
      }
      if (src_[pos_] == '\\') {
        pos_ += 2;
        end = pos_;
        continue;
      }
      if (src_[pos_] == '"' || src_[pos_] == '\n') {
        end = pos_;
        if (src_[pos_] == '"') ++pos_;
        break;
      }
      ++pos_;
      end = pos_;
    }
    Emit(TokKind::kString, std::string(src_.substr(begin, end - begin)),
         start_line);
  }

  void LexCharLit() {
    const int start_line = line_;
    ++pos_;  // consume the opening quote
    const size_t begin = pos_;
    size_t end = begin;
    while (pos_ < src_.size()) {
      if (src_[pos_] == '\\') {
        pos_ += 2;
        end = pos_;
        continue;
      }
      if (src_[pos_] == '\'' || src_[pos_] == '\n') {
        end = pos_;
        if (src_[pos_] == '\'') ++pos_;
        break;
      }
      ++pos_;
      end = pos_;
    }
    Emit(TokKind::kCharLit, std::string(src_.substr(begin, end - begin)),
         start_line);
  }

  void LexPunct() {
    for (std::string_view punct : kPuncts) {
      if (src_.substr(pos_, punct.size()) == punct) {
        Emit(TokKind::kPunct, std::string(punct), line_);
        pos_ += punct.size();
        return;
      }
    }
    Emit(TokKind::kPunct, std::string(1, src_[pos_]), line_);
    ++pos_;
  }

  std::string_view src_;
  size_t pos_ = 0;
  int line_ = 1;
  bool at_line_start_ = true;
  LexedFile out_;
};

}  // namespace

LexedFile Lex(std::string_view source) { return Lexer(source).Run(); }

}  // namespace cad_lint
