// cad_lint — minimal C++ tokenizer.
//
// Just enough lexing for the project-invariant rules in rules.h: real
// identifier/punctuator tokens (so `rand` inside a string literal never
// matches a rule), preprocessor directives as single tokens (for the
// include-guard rule), and comments collected separately with line numbers
// (for `// cad-lint: allow(...)` suppressions). No preprocessing, no
// semantic analysis — rules are token-pattern scanners by design, which
// keeps the tool dependency-free (no libclang) and fast enough to run on
// every build.
#ifndef CAD_TOOLS_CAD_LINT_LEXER_H_
#define CAD_TOOLS_CAD_LINT_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

namespace cad_lint {

enum class TokKind {
  kIdentifier,  // identifiers and keywords
  kNumber,
  kString,     // string literal, including raw strings; text excludes quotes
  kCharLit,    // character literal
  kPunct,      // operators/punctuation, maximal munch (see lexer.cc)
  kDirective,  // one whole preprocessor line (continuations folded in)
};

struct Token {
  TokKind kind;
  std::string text;
  int line = 0;  // 1-based line of the token's first character
};

struct Comment {
  std::string text;  // without the // or /* */ markers
  int line = 0;      // line the comment starts on
  int end_line = 0;  // line the comment ends on (== line for // comments)
};

struct LexedFile {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
  int n_lines = 0;
};

// Tokenizes `source`. Never fails: unrecognized bytes become single-char
// punctuators, unterminated literals run to end of line.
LexedFile Lex(std::string_view source);

}  // namespace cad_lint

#endif  // CAD_TOOLS_CAD_LINT_LEXER_H_
