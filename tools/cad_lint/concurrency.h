// Tree-wide concurrency-correctness rules CL009–CL011.
//
// These consume the shared extraction in callgraph.h: `MutexLock`-family
// RAII declarations open held-lock scopes, REQUIRES() annotations hold
// their locks across the whole body, and every call site, primitive site,
// and member access carries the canonical set of locks held there.
//
//   CL009  potential deadlock: the acquired-while-held graph — an edge
//          A -> B for every `MutexLock` of B in a scope where A is held,
//          including transitively through in-tree callees — contains a
//          cycle. The finding carries the full lock chain and the call
//          path that closes it. A total lock order (common/lock_order.h)
//          is exactly the discipline that keeps this graph acyclic.
//   CL010  blocking or allocating primitive invoked while a capability is
//          held: waits, joins, sleeps, iostream/stdio, and allocation
//          inside a `MutexLock` scope stretch every other thread's
//          tail latency by the same amount (lock-type primitives are
//          CL009's domain and exempt here). Allocation findings anchor at
//          the `MutexLock` line — one reasoned suppression covers the
//          copy-under-lock scope, not each of its lines. The
//          condition-variable idiom (`cv.wait(lk)` on a `unique_lock`
//          declared in the same body) is allowed, as is `Mutex::native()`
//          when it only feeds that idiom; any other `.native()` use is a
//          finding, because it bypasses both the Clang analysis and the
//          runtime lock-order tracker.
//   CL011  thread-safety parity off Clang: a token-level port of the core
//          GUARDED_BY / REQUIRES / EXCLUDES checks, so GCC-only CI keeps
//          the same contract -Werror=thread-safety enforces under Clang.
//          Three shapes: (a) a GUARDED_BY member accessed without its
//          mutex held (constructors/destructors exempt — no sharing yet);
//          (b) a call to a REQUIRES(m) function where m is not held;
//          (c) a call to an EXCLUDES(m) function while m IS held.
//
// Like every token-level layer in this tree, the pass resolves calls by
// name and over-approximates on overloads; member matching leans on the
// project's trailing-underscore convention for implicit-this accesses. The
// runtime lock-order tracker (common/mutex.h, CAD_CHECK_LEVEL=full under
// TSan) is the dynamic cross-check.
#ifndef CAD_TOOLS_CAD_LINT_CONCURRENCY_H_
#define CAD_TOOLS_CAD_LINT_CONCURRENCY_H_

#include <string>
#include <vector>

#include "realtime.h"
#include "rules.h"

namespace cad_lint {

// Runs CL009/CL010/CL011 over every file at once. Findings come back
// sorted by (path, line, rule) with `suppressed` resolved against each
// finding's own file.
std::vector<Finding> LintConcurrency(const std::vector<FileInput>& files);

}  // namespace cad_lint

#endif  // CAD_TOOLS_CAD_LINT_CONCURRENCY_H_
