#include "rules.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lexer.h"

namespace cad_lint {

namespace {

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool IsHeaderPath(const std::string& path) {
  return EndsWith(path, ".h") || EndsWith(path, ".hpp");
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

bool IsKnownRule(std::string_view id) {
  for (const RuleInfo& rule : Rules()) {
    if (rule.id == id) return true;
  }
  return false;
}

}  // namespace

// Parses suppression comments. A comment participates only when its trimmed
// text *starts* with "cad-lint:" — prose that merely mentions the syntax
// (docs, this very file) is ignored. Malformed directives become CL000
// findings, which are themselves unsuppressable.
void ParseSuppressions(const LexedFile& lex, std::vector<Suppression>* sups,
                       std::vector<Finding>* findings) {
  constexpr std::string_view kPrefix = "cad-lint:";
  constexpr std::string_view kAllow = "allow(";
  for (const Comment& comment : lex.comments) {
    std::string_view text = Trim(comment.text);
    if (text.substr(0, kPrefix.size()) != kPrefix) continue;
    text = Trim(text.substr(kPrefix.size()));
    const auto bad = [&](const std::string& why) {
      findings->push_back(Finding{
          "", comment.line, "CL000", "malformed cad-lint suppression: " + why,
          "write `// cad-lint: allow(CLxxx) <reason>`", false});
    };
    if (text.substr(0, kAllow.size()) != kAllow) {
      bad("expected `allow(<rule>)` after `cad-lint:`");
      continue;
    }
    text.remove_prefix(kAllow.size());
    const size_t close = text.find(')');
    if (close == std::string_view::npos) {
      bad("unterminated `allow(`");
      continue;
    }
    const std::string rule(Trim(text.substr(0, close)));
    if (!IsKnownRule(rule)) {
      bad("unknown rule id `" + rule + "`");
      continue;
    }
    const std::string_view reason = Trim(text.substr(close + 1));
    if (reason.empty()) {
      bad("missing reason after `allow(" + rule + ")`");
      continue;
    }
    sups->push_back(Suppression{rule, comment.line, comment.end_line + 1});
  }
}

bool IsSuppressed(const std::vector<Suppression>& sups,
                  const std::string& rule, int line) {
  for (const Suppression& sup : sups) {
    if (sup.rule == rule && line >= sup.first_line && line <= sup.last_line) {
      return true;
    }
  }
  return false;
}

namespace {

const Token* At(const std::vector<Token>& toks, size_t i) {
  return i < toks.size() ? &toks[i] : nullptr;
}

bool TokIs(const std::vector<Token>& toks, size_t i, std::string_view text) {
  const Token* t = At(toks, i);
  return t != nullptr && t->text == text;
}

// Skips a balanced template-argument list. `i` must index the opening `<`;
// returns the index just past the matching close, or `i` when the list never
// closes (the caller then bails on the pattern).
size_t SkipAngles(const std::vector<Token>& toks, size_t i) {
  int depth = 0;
  for (size_t j = i; j < toks.size(); ++j) {
    const std::string& t = toks[j].text;
    if (t == "<") {
      ++depth;
    } else if (t == "<<") {
      depth += 2;
    } else if (t == ">") {
      --depth;
    } else if (t == ">>") {
      depth -= 2;
    } else if (t == ";" || t == "{") {
      return i;  // not a template-argument list after all
    }
    if (depth <= 0) return j + 1;
  }
  return i;
}

// ---------------------------------------------------------------------------
// CL001: side effects inside check-macro conditions.
// ---------------------------------------------------------------------------

void RunCl001(const std::vector<Token>& toks, std::vector<Finding>* out) {
  const std::set<std::string_view> kMacros = {"CAD_CHECK", "CAD_DCHECK",
                                             "CAD_VALIDATE"};
  const std::set<std::string_view> kSideEffects = {
      "=",  "++", "--", "+=", "-=",  "*=",  "/=",
      "%=", "&=", "|=", "^=", "<<=", ">>="};
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdentifier ||
        kMacros.count(toks[i].text) == 0 || !TokIs(toks, i + 1, "(")) {
      continue;
    }
    int depth = 1;
    for (size_t j = i + 2; j < toks.size() && depth > 0; ++j) {
      const std::string& t = toks[j].text;
      if (t == "(") {
        ++depth;
      } else if (t == ")") {
        --depth;
      } else if (t == "," && depth == 1) {
        break;  // only the condition argument is conditionally evaluated
      } else if (toks[j].kind == TokKind::kPunct &&
                 kSideEffects.count(t) > 0) {
        // `[=]` lambda captures and `.field = v` designated initializers
        // are not assignments.
        if (t == "=" && TokIs(toks, j - 1, "[")) continue;
        if (t == "=" && j >= 2 && toks[j - 1].kind == TokKind::kIdentifier &&
            TokIs(toks, j - 2, ".")) {
          continue;
        }
        out->push_back(Finding{
            "", toks[j].line, "CL001",
            "side effect `" + t + "` inside " + toks[i].text +
                " condition; the expression is skipped entirely when checks "
                "are compiled out",
            "hoist the mutation onto its own statement before the check",
            false});
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// CL002: ad-hoc randomness / wall-clock seeding.
// ---------------------------------------------------------------------------

void RunCl002(const std::string& path, const std::vector<Token>& toks,
              std::vector<Finding>* out) {
  if (EndsWith(path, "common/rng.h") || EndsWith(path, "common/rng.cc")) {
    return;  // the one sanctioned home for RNG plumbing
  }
  const std::set<std::string_view> kBanned = {
      "rand", "srand", "drand48", "lrand48", "srand48", "random_device"};
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdentifier) continue;
    // Member access (`watch.time(...)`) is someone else's API, not libc.
    const bool member = TokIs(toks, i - 1, ".") || TokIs(toks, i - 1, "->");
    if (kBanned.count(toks[i].text) > 0 && !member) {
      out->push_back(Finding{
          "", toks[i].line, "CL002",
          "`" + toks[i].text +
              "` bypasses the seeded generator; detection output would "
              "change run to run",
          "route randomness through cad::Rng (common/rng.h) with an "
          "explicit seed",
          false});
      continue;
    }
    if (toks[i].text == "time" && !member && TokIs(toks, i + 1, "(") &&
        TokIs(toks, i + 3, ")") &&
        (TokIs(toks, i + 2, "nullptr") || TokIs(toks, i + 2, "NULL") ||
         TokIs(toks, i + 2, "0"))) {
      out->push_back(Finding{
          "", toks[i].line, "CL002",
          "wall-clock seeding via `time(...)` makes runs irreproducible",
          "route randomness through cad::Rng (common/rng.h) with an "
          "explicit seed",
          false});
    }
  }
}

// ---------------------------------------------------------------------------
// CL003: range-for over unordered containers.
// ---------------------------------------------------------------------------

void RunCl003(const std::vector<Token>& toks, std::vector<Finding>* out) {
  const std::set<std::string_view> kUnordered = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  // Pass A: names declared with an unordered type anywhere in this file
  // (locals, parameters, and class members all look the same at token level).
  std::set<std::string> unordered_names;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdentifier ||
        kUnordered.count(toks[i].text) == 0 || !TokIs(toks, i + 1, "<")) {
      continue;
    }
    size_t j = SkipAngles(toks, i + 1);
    if (j == i + 1) continue;
    while (TokIs(toks, j, "&") || TokIs(toks, j, "*") ||
           TokIs(toks, j, "const") || TokIs(toks, j, "&&")) {
      ++j;
    }
    const Token* name = At(toks, j);
    if (name != nullptr && name->kind == TokKind::kIdentifier) {
      unordered_names.insert(name->text);
    }
  }
  if (unordered_names.empty()) return;

  // Pass B: range-for statements whose range expression is a plain
  // identifier chain naming one of those containers. Expressions containing
  // a call (`SortedKeys(m)`) already reorder and are left alone.
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdentifier || toks[i].text != "for" ||
        !TokIs(toks, i + 1, "(")) {
      continue;
    }
    int depth = 1;
    size_t colon = 0;
    size_t close = 0;
    for (size_t j = i + 2; j < toks.size() && depth > 0; ++j) {
      const std::string& t = toks[j].text;
      if (t == "(") ++depth;
      if (t == ")") {
        --depth;
        if (depth == 0) close = j;
      }
      if (t == ":" && depth == 1 && colon == 0) colon = j;
      if (t == ";") break;  // classic three-clause for
    }
    if (colon == 0 || close == 0) continue;
    bool has_call = false;
    std::string offender;
    for (size_t j = colon + 1; j < close; ++j) {
      if (toks[j].text == "(") has_call = true;
      if (toks[j].kind == TokKind::kIdentifier &&
          unordered_names.count(toks[j].text) > 0) {
        offender = toks[j].text;
      }
    }
    if (!offender.empty() && !has_call) {
      out->push_back(Finding{
          "", toks[colon].line, "CL003",
          "range-for over unordered container `" + offender +
              "`; hash iteration order leaks into whatever this loop "
              "produces",
          "sort the keys at the emit point or use an ordered container; "
          "suppress with a reason only for order-independent reductions",
          false});
    }
  }
}

// ---------------------------------------------------------------------------
// CL004 + CL005: scope-aware rules (one shared brace-classifying walk).
// ---------------------------------------------------------------------------

enum class BraceKind { kScope, kClass, kBody };

// Classifies the `{` at `brace` by the statement tokens since the last
// boundary. Paren depth matters: `struct` inside a parameter list does not
// make the following brace a class body.
BraceKind ClassifyBrace(const std::vector<Token>& toks, size_t stmt_start,
                        size_t brace) {
  int paren_depth = 0;
  bool saw_eq = false;
  BraceKind kind = BraceKind::kBody;
  for (size_t i = stmt_start; i < brace; ++i) {
    const std::string& t = toks[i].text;
    if (t == "(") ++paren_depth;
    if (t == ")") --paren_depth;
    if (toks[i].kind != TokKind::kIdentifier) {
      if (t == "=") saw_eq = true;
      continue;
    }
    if (paren_depth != 0) continue;
    if (t == "enum" || t == "namespace" || t == "extern") {
      return BraceKind::kScope;
    }
    if (t == "class" || t == "struct" || t == "union") {
      kind = BraceKind::kClass;
    }
  }
  if (saw_eq) return BraceKind::kBody;  // brace-init, lambda assignment, ...
  return kind;
}

// Extracts the class name for diagnostics: the first identifier after the
// class keyword, skipping attribute-macro calls like CAPABILITY("mutex").
std::string ClassName(const std::vector<Token>& toks, size_t stmt_start,
                      size_t brace) {
  for (size_t i = stmt_start; i < brace; ++i) {
    const std::string& t = toks[i].text;
    if (t != "class" && t != "struct" && t != "union") continue;
    for (size_t j = i + 1; j < brace; ++j) {
      if (toks[j].kind != TokKind::kIdentifier) continue;
      if (TokIs(toks, j + 1, "(")) {  // attribute macro — skip its arguments
        int depth = 0;
        size_t k = j + 1;
        for (; k < brace; ++k) {
          if (toks[k].text == "(") ++depth;
          if (toks[k].text == ")" && --depth == 0) break;
        }
        j = k;
        continue;
      }
      return toks[j].text;
    }
  }
  return "(anonymous)";
}

struct ClassFrame {
  std::string name;
  std::vector<std::vector<size_t>> stmts;  // direct-member statements
  std::vector<size_t> cur;
};

const std::set<std::string_view>& MemberExemptKeywords() {
  static const std::set<std::string_view> kExempt = {
      "static", "constexpr", "const",  "atomic",   "thread_local",
      "using",  "typedef",   "friend", "operator", "template"};
  return kExempt;
}

void FlagUnguardedMembers(const std::vector<Token>& toks,
                          const ClassFrame& frame,
                          std::vector<Finding>* out) {
  std::string mutex_name;
  std::vector<const std::vector<size_t>*> candidates;
  for (const std::vector<size_t>& stmt : frame.stmts) {
    if (stmt.empty()) continue;
    bool has_paren = false;
    bool exempt = false;
    bool is_mutex = false;
    std::string last_ident;
    std::string name;  // last identifier before any initializer
    for (size_t idx : stmt) {
      const Token& t = toks[idx];
      if (t.text == "(") has_paren = true;
      if (t.text == "=" && name.empty()) name = last_ident;
      if (t.kind == TokKind::kIdentifier) {
        last_ident = t.text;
        if (MemberExemptKeywords().count(t.text) > 0) exempt = true;
        if (t.text.find("utex") != std::string::npos) is_mutex = true;
      }
    }
    if (name.empty()) name = last_ident;
    if (is_mutex && !has_paren) {
      if (mutex_name.empty()) mutex_name = name;
      continue;
    }
    // GUARDED_BY(...) and function declarations both carry parens; either
    // way the statement is not an unannotated data member.
    if (has_paren || exempt || name.empty()) continue;
    candidates.push_back(&stmt);
  }
  if (mutex_name.empty()) return;
  for (const std::vector<size_t>* stmt : candidates) {
    std::string name;
    std::string last_ident;
    for (size_t idx : *stmt) {
      const Token& t = toks[idx];
      if (t.text == "=" && name.empty()) name = last_ident;
      if (t.kind == TokKind::kIdentifier) last_ident = t.text;
    }
    if (name.empty()) name = last_ident;
    out->push_back(Finding{
        "", toks[stmt->front()].line, "CL005",
        "member `" + name + "` of `" + frame.name +
            "` sits next to mutex `" + mutex_name +
            "` without GUARDED_BY, const, static, or atomic; its locking "
            "contract is undocumented",
        "annotate with GUARDED_BY(" + mutex_name +
            ") or make the member const/atomic",
        false});
  }
}

// CL005, second shape: an inline method that takes a lock must announce its
// locking contract on the declaration, or -Wthread-safety cannot see it.

struct MethodFrame {
  bool valid = false;      // this brace is an inline method body in a class
  bool annotated = false;  // declaration carries EXCLUDES/REQUIRES/...
  bool takes_lock = false; // body constructs a scoped lock
  std::string name;
  int line = 0;
};

bool IsLockAnnotation(const std::string& t) {
  return t == "EXCLUDES" || t == "REQUIRES" || t == "REQUIRES_SHARED" ||
         t == "LOCKS_EXCLUDED" || t == "EXCLUSIVE_LOCKS_REQUIRED" ||
         t == "SHARED_LOCKS_REQUIRED";
}

bool IsScopedLockType(const std::string& t) {
  return t == "MutexLock" || t == "lock_guard" || t == "unique_lock" ||
         t == "scoped_lock" || t == "shared_lock";
}

// Builds the method frame for a `{` opening a body directly inside a class,
// from the declaration statement collected since the previous boundary.
MethodFrame MakeMethodFrame(const std::vector<Token>& toks,
                            const std::vector<size_t>& decl) {
  MethodFrame method;
  if (decl.empty()) return method;
  std::string last_ident;
  for (size_t idx : decl) {
    const Token& t = toks[idx];
    if (t.text == "(" && method.name.empty()) method.name = last_ident;
    if (t.kind != TokKind::kIdentifier) continue;
    last_ident = t.text;
    if (IsLockAnnotation(t.text)) method.annotated = true;
  }
  method.valid = !method.name.empty();
  method.line = toks[decl.front()].line;
  return method;
}

// Keywords whose presence in the declaration prefix means the Status/Result
// token is not the return type of a new declaration.
bool PrefixBlocksCl004(const std::vector<Token>& toks, size_t stmt_start,
                       size_t i) {
  const std::set<std::string_view> kBlockers = {
      "using",  "typedef", "friend", "operator", "class",
      "struct", "enum",    "return", "nodiscard"};
  for (size_t j = stmt_start; j < i; ++j) {
    if (toks[j].kind == TokKind::kIdentifier &&
        kBlockers.count(toks[j].text) > 0) {
      return true;
    }
  }
  return false;
}

void RunScopedRules(const std::string& path, const std::vector<Token>& toks,
                    std::vector<Finding>* out) {
  const bool header = IsHeaderPath(path);
  std::vector<BraceKind> brace_stack;
  // Parallel to brace_stack: index into class_frames, or -1.
  std::vector<int> frame_at_level;
  // Parallel to brace_stack: the inline-method declaration this brace opened
  // (valid only for method bodies directly inside a class).
  std::vector<MethodFrame> method_stack;
  std::vector<ClassFrame> class_frames;
  size_t stmt_start = 0;
  int paren_depth = 0;
  int body_depth = 0;  // how many kBody braces enclose the current token

  const auto top_frame = [&]() -> ClassFrame* {
    if (frame_at_level.empty() || frame_at_level.back() < 0) return nullptr;
    return &class_frames[static_cast<size_t>(frame_at_level.back())];
  };

  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& tok = toks[i];
    if (tok.kind == TokKind::kDirective) {
      if (ClassFrame* frame = top_frame(); frame != nullptr) {
        frame->stmts.push_back(frame->cur);
        frame->cur.clear();
      }
      stmt_start = i + 1;
      continue;
    }
    const std::string& t = tok.text;
    if (t == "(") ++paren_depth;
    if (t == ")" && paren_depth > 0) --paren_depth;

    if (t == "{" && paren_depth == 0) {
      MethodFrame method;
      if (ClassFrame* frame = top_frame(); frame != nullptr) {
        method = MakeMethodFrame(toks, frame->cur);
        frame->cur.clear();  // method body / nested type: not a data member
      }
      const BraceKind kind = ClassifyBrace(toks, stmt_start, i);
      if (kind != BraceKind::kBody) method.valid = false;
      method_stack.push_back(method);
      brace_stack.push_back(kind);
      if (kind == BraceKind::kBody) ++body_depth;
      if (kind == BraceKind::kClass) {
        class_frames.push_back(
            ClassFrame{ClassName(toks, stmt_start, i), {}, {}});
        frame_at_level.push_back(static_cast<int>(class_frames.size()) - 1);
      } else {
        frame_at_level.push_back(-1);
      }
      stmt_start = i + 1;
      continue;
    }
    if (t == "}" && paren_depth == 0) {
      if (!brace_stack.empty()) {
        if (frame_at_level.back() >= 0) {
          ClassFrame& frame =
              class_frames[static_cast<size_t>(frame_at_level.back())];
          frame.stmts.push_back(frame.cur);
          FlagUnguardedMembers(toks, frame, out);
        }
        const MethodFrame& method = method_stack.back();
        if (header && method.valid && method.takes_lock &&
            !method.annotated) {
          out->push_back(Finding{
              "", method.line, "CL005",
              "method `" + method.name +
                  "` takes a lock in its body but its declaration carries "
                  "no thread-safety annotation; callers (and "
                  "-Wthread-safety) cannot see the locking contract",
              "annotate the declaration with EXCLUDES(<mutex>) (or "
              "REQUIRES if the caller must hold it)",
              false});
        }
        method_stack.pop_back();
        if (brace_stack.back() == BraceKind::kBody) --body_depth;
        brace_stack.pop_back();
        frame_at_level.pop_back();
      }
      stmt_start = i + 1;
      continue;
    }
    if (t == ";" && paren_depth == 0) {
      if (ClassFrame* frame = top_frame(); frame != nullptr) {
        frame->stmts.push_back(frame->cur);
        frame->cur.clear();
      }
      stmt_start = i + 1;
      continue;
    }
    if (t == ":" && paren_depth == 0) {
      if (ClassFrame* frame = top_frame(); frame != nullptr) {
        const std::vector<size_t>& cur = frame->cur;
        if (cur.size() == 1 && (toks[cur[0]].text == "public" ||
                                toks[cur[0]].text == "private" ||
                                toks[cur[0]].text == "protected")) {
          frame->cur.clear();
          stmt_start = i + 1;
          continue;
        }
      }
    }
    if (ClassFrame* frame = top_frame(); frame != nullptr) {
      frame->cur.push_back(i);
    }

    // CL005 (method shape): a scoped-lock construction anywhere inside an
    // inline method body marks every enclosing method frame.
    if (tok.kind == TokKind::kIdentifier && IsScopedLockType(t)) {
      for (MethodFrame& method : method_stack) {
        if (method.valid) method.takes_lock = true;
      }
    }

    // CL004: Status/Result return types at declaration scope in headers.
    if (header && body_depth == 0 && paren_depth == 0 &&
        tok.kind == TokKind::kIdentifier &&
        (t == "Status" || t == "Result") &&
        !PrefixBlocksCl004(toks, stmt_start, i)) {
      size_t j = i + 1;
      if (t == "Result") {
        if (!TokIs(toks, j, "<")) continue;
        j = SkipAngles(toks, j);
        if (j == i + 1) continue;
      }
      while (TokIs(toks, j, "&") || TokIs(toks, j, "*") ||
             TokIs(toks, j, "const")) {
        ++j;
      }
      const Token* name = At(toks, j);
      if (name == nullptr || name->kind != TokKind::kIdentifier ||
          name->text == "operator") {
        continue;
      }
      if (TokIs(toks, j + 1, "::")) continue;  // out-of-line definition
      if (!TokIs(toks, j + 1, "(")) continue;  // not a function declaration
      out->push_back(Finding{
          "", tok.line, "CL004",
          "`" + name->text + "` returns " + t +
              " but is not [[nodiscard]]; a dropped return value silently "
              "swallows the error",
          "add [[nodiscard]] to the declaration", false});
    }
  }
}

// ---------------------------------------------------------------------------
// CL006: include hygiene (headers only).
// ---------------------------------------------------------------------------

std::vector<std::string> SplitWords(std::string_view text) {
  std::vector<std::string> words;
  std::string cur;
  for (char c : text) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!cur.empty()) words.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) words.push_back(std::move(cur));
  return words;
}

void RunCl006(const std::string& path, const LexedFile& lex,
              std::vector<Finding>* out) {
  if (!IsHeaderPath(path) || lex.tokens.empty()) return;
  std::vector<const Token*> directives;
  for (const Token& tok : lex.tokens) {
    if (tok.kind == TokKind::kDirective) directives.push_back(&tok);
  }
  bool guarded = false;
  if (directives.size() >= 1) {
    const std::vector<std::string> first = SplitWords(directives[0]->text);
    if (first.size() >= 2 && first[0] == "#pragma" && first[1] == "once") {
      guarded = true;
    } else if (directives.size() >= 2 && first.size() >= 2 &&
               first[0] == "#ifndef") {
      const std::vector<std::string> second =
          SplitWords(directives[1]->text);
      guarded = second.size() >= 2 && second[0] == "#define" &&
                second[1] == first[1];
    }
  }
  if (!guarded) {
    out->push_back(Finding{
        "", 1, "CL006",
        "header lacks an include guard (#ifndef/#define pair or #pragma "
        "once)",
        "open the header with `#ifndef CAD_<PATH>_H_` / `#define "
        "CAD_<PATH>_H_`",
        false});
  }
  for (size_t i = 0; i + 1 < lex.tokens.size(); ++i) {
    if (lex.tokens[i].kind == TokKind::kIdentifier &&
        lex.tokens[i].text == "using" &&
        TokIs(lex.tokens, i + 1, "namespace")) {
      out->push_back(Finding{
          "", lex.tokens[i].line, "CL006",
          "`using namespace` in a header injects the namespace into every "
          "includer",
          "qualify names explicitly or move the using-directive into a .cc "
          "file",
          false});
    }
  }
}

}  // namespace

const std::vector<RuleInfo>& Rules() {
  static const std::vector<RuleInfo> kRules = {
      {"CL000", "malformed cad-lint suppression comment"},
      {"CL001", "side effect inside CAD_CHECK/CAD_DCHECK/CAD_VALIDATE"},
      {"CL002", "ad-hoc randomness or wall-clock seeding outside cad::Rng"},
      {"CL003", "range-for over unordered_map/unordered_set"},
      {"CL004", "Status/Result-returning declaration missing [[nodiscard]]"},
      {"CL005",
       "mutex discipline: unguarded member, or locking method without "
       "annotation"},
      {"CL006", "header missing include guard or using-namespace in header"},
      {"CL007",
       "realtime-annotated function reaches an allocating or blocking "
       "primitive"},
      {"CL008",
       "incompatible realtime annotations across a call or virtual "
       "override"},
      {"CL009",
       "potential deadlock: cycle in the acquired-while-held lock graph"},
      {"CL010",
       "blocking or allocating primitive (or raw Mutex::native()) while a "
       "capability is held"},
      {"CL011",
       "GUARDED_BY/REQUIRES/EXCLUDES violation (token-level thread-safety "
       "parity off Clang)"},
  };
  return kRules;
}

std::vector<Finding> LintSource(const std::string& path,
                                std::string_view source) {
  const LexedFile lex = Lex(source);
  std::vector<Finding> findings;
  std::vector<Suppression> sups;
  ParseSuppressions(lex, &sups, &findings);

  std::vector<Finding> rule_findings;
  RunCl001(lex.tokens, &rule_findings);
  RunCl002(path, lex.tokens, &rule_findings);
  RunCl003(lex.tokens, &rule_findings);
  RunScopedRules(path, lex.tokens, &rule_findings);
  RunCl006(path, lex, &rule_findings);

  for (Finding& finding : rule_findings) {
    finding.suppressed = IsSuppressed(sups, finding.rule, finding.line);
    findings.push_back(std::move(finding));
  }
  for (Finding& finding : findings) finding.path = path;
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return findings;
}

}  // namespace cad_lint
