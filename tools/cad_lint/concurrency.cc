#include "concurrency.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "callgraph.h"
#include "lexer.h"

namespace cad_lint {

namespace {

// Lock-type primitive labels: acquisitions are CL009's domain, not CL010's.
bool IsLockPrimitive(const std::string& label) {
  return label == "MutexLock" || label == "lock_guard" ||
         label == "unique_lock" || label == "scoped_lock" ||
         label == "shared_lock" || label == "lock()";
}

std::string LastComponent(const std::string& key) {
  const size_t colons = key.rfind("::");
  const size_t dot = key.find_last_of(".>");  // `.` or the `>` of `->`
  size_t cut = std::string::npos;
  if (colons != std::string::npos) cut = colons + 2;
  if (dot != std::string::npos && (cut == std::string::npos || dot + 1 > cut))
    cut = dot + 1;
  return cut == std::string::npos ? key : key.substr(cut);
}

bool IsQualified(const std::string& key) {
  return key.find("::") != std::string::npos ||
         key.find('.') != std::string::npos ||
         key.find("->") != std::string::npos;
}

// Do two canonical lock keys plausibly name the same mutex? Exact match, or
// equal member names when at most one side is qualified — `mu_` written in
// an annotation matches `StreamingCad::mu_` held by the caller, but
// `Foo::mu_` never matches `Bar::mu_`.
bool KeysMatch(const std::string& a, const std::string& b) {
  if (a == b) return true;
  if (LastComponent(a) != LastComponent(b)) return false;
  return !(IsQualified(a) && IsQualified(b));
}

// REQUIRES(mu) locks are held from function entry. The annotation lives on
// the header declaration while the scope-held sets are computed from the
// (often out-of-line) definition, so every held-set check widens the
// scope-held vector with the merged node's contract. Scope-held keys stay
// last so `.back()` still names the innermost explicit acquisition.
std::vector<std::string> EffectiveHeld(const FuncNode& node,
                                       const std::vector<std::string>& held) {
  std::vector<std::string> out = node.requires_locks;
  for (const std::string& h : held) {
    if (std::find(out.begin(), out.end(), h) == out.end()) out.push_back(h);
  }
  return out;
}

bool HoldsKey(const std::vector<std::string>& held, const std::string& key) {
  for (const std::string& h : held) {
    if (KeysMatch(h, key)) return true;
  }
  return false;
}

std::string JoinHeld(const std::vector<std::string>& held) {
  std::string out;
  for (const std::string& h : held) {
    if (!out.empty()) out += ", ";
    out += "`" + h + "`";
  }
  return out;
}

// One representative way a function (transitively) acquires a lock key.
struct AcquireVia {
  std::vector<size_t> chain;  // node indices, caller-to-acquirer
  std::string path;           // the MutexLock site
  int line = 0;
};

// Memoized transitive-acquisition sets: every lock key a function may take
// while running, with one representative call chain per key. Trusts
// nothing — unlike CL007's effect walk there is no annotation boundary;
// holding a lock across *any* callee that locks is an ordering edge.
class AcquireSets {
 public:
  explicit AcquireSets(Analysis* analysis) : analysis_(analysis) {}

  const std::map<std::string, AcquireVia>& Of(size_t idx) {
    auto memo_it = memo_.find(idx);
    if (memo_it != memo_.end()) return memo_it->second;
    if (visiting_.count(idx) > 0) {
      static const std::map<std::string, AcquireVia> kEmpty;
      return kEmpty;  // cycles resolve optimistic, like Analysis::Reach
    }
    visiting_.insert(idx);
    std::map<std::string, AcquireVia> out;
    const FuncNode& node = analysis_->nodes()[idx];
    for (const LockAcquire& acq : node.acquires) {
      if (out.count(acq.key) == 0) {
        out[acq.key] = AcquireVia{{idx}, acq.path, acq.line};
      }
    }
    for (const CallSite& call : node.calls) {
      for (size_t cand : analysis_->Resolve(call)) {
        if (cand == idx) continue;
        for (const auto& [key, via] : Of(cand)) {
          if (out.count(key) != 0) continue;
          AcquireVia mine;
          mine.chain.push_back(idx);
          mine.chain.insert(mine.chain.end(), via.chain.begin(),
                            via.chain.end());
          mine.path = via.path;
          mine.line = via.line;
          out[key] = std::move(mine);
        }
      }
    }
    visiting_.erase(idx);
    return memo_[idx] = std::move(out);
  }

 private:
  Analysis* analysis_;
  std::map<size_t, std::map<std::string, AcquireVia>> memo_;
  std::set<size_t> visiting_;
};

// One acquired-while-held edge with its first-seen witness.
struct EdgeInfo {
  std::string path;
  int line = 0;
  std::string how;  // human text: where and through which call path
};

}  // namespace

std::vector<Finding> LintConcurrency(const std::vector<FileInput>& files) {
  ParsedFile parsed;
  std::map<std::string, std::vector<Suppression>> sups;
  for (const FileInput& file : files) {
    const LexedFile lex = Lex(file.source);
    std::vector<Finding> ignored;  // CL000 is LintSource's report, not ours
    ParseSuppressions(lex, &sups[file.path], &ignored);
    ParseFile(file.path, lex, &parsed);
  }
  std::vector<GuardedMember> guarded = std::move(parsed.guarded);
  Analysis analysis(MergeParsedFns(std::move(parsed.fns)));

  std::vector<Finding> findings;
  std::set<std::string> seen;
  const auto emit = [&](const std::string& path, int line,
                        const std::string& rule, const std::string& key,
                        const std::string& message,
                        const std::string& suggestion) {
    if (!seen.insert(rule + "|" + key).second) return;
    Finding f;
    f.path = path;
    f.line = line;
    f.rule = rule;
    f.message = message;
    f.suggestion = suggestion;
    auto it = sups.find(path);
    f.suppressed = it != sups.end() && IsSuppressed(it->second, rule, line);
    findings.push_back(std::move(f));
  };

  // Deterministic node order for every walk below.
  std::vector<size_t> order(analysis.nodes().size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const FuncNode& na = analysis.nodes()[a];
    const FuncNode& nb = analysis.nodes()[b];
    if (na.path != nb.path) return na.path < nb.path;
    if (na.line != nb.line) return na.line < nb.line;
    return na.qual < nb.qual;
  });

  // -------------------------------------------------------------------------
  // CL009: acquired-while-held graph + cycle search.
  // -------------------------------------------------------------------------
  AcquireSets acquire_sets(&analysis);
  std::map<std::string, std::map<std::string, EdgeInfo>> edges;
  const auto add_edge = [&](const std::string& from, const std::string& to,
                            EdgeInfo info) {
    if (from == to) return;  // same lock class twice is CL011's re-entrancy
    auto& dest = edges[from];
    if (dest.count(to) == 0) dest[to] = std::move(info);
  };
  for (size_t idx : order) {
    const FuncNode& node = analysis.nodes()[idx];
    for (const LockAcquire& acq : node.acquires) {
      for (const std::string& h : EffectiveHeld(node, acq.held)) {
        add_edge(h, acq.key,
                 EdgeInfo{acq.path, acq.line,
                          "`" + node.qual + "` locks `" + acq.key +
                              "` while holding `" + h + "` (" + acq.path +
                              ":" + std::to_string(acq.line) + ")"});
      }
    }
    for (const CallSite& call : node.calls) {
      const std::vector<std::string> held = EffectiveHeld(node, call.held);
      if (held.empty()) continue;
      for (size_t cand : analysis.Resolve(call)) {
        if (cand == idx) continue;
        for (const auto& [key, via] : acquire_sets.Of(cand)) {
          for (const std::string& h : held) {
            std::vector<size_t> chain;
            chain.push_back(idx);
            chain.insert(chain.end(), via.chain.begin(), via.chain.end());
            add_edge(h, key,
                     EdgeInfo{call.path, call.line,
                              "`" + node.qual + "` holds `" + h +
                                  "` and reaches the lock of `" + key +
                                  "` at " + via.path + ":" +
                                  std::to_string(via.line) +
                                  " (call path: " +
                                  ChainText(analysis, chain) + ")"});
          }
        }
      }
    }
  }
  // Any edge whose reverse direction is already reachable closes a cycle.
  const auto find_path =
      [&](const std::string& from,
          const std::string& to) -> std::vector<std::string> {
    std::vector<std::string> stack = {from};
    std::set<std::string> visited = {from};
    std::vector<std::pair<std::string, std::vector<std::string>>> work;
    work.emplace_back(from, stack);
    while (!work.empty()) {
      auto [cur, path] = work.back();
      work.pop_back();
      if (cur == to) return path;
      auto it = edges.find(cur);
      if (it == edges.end()) continue;
      for (const auto& [next, info] : it->second) {
        if (!visited.insert(next).second) continue;
        std::vector<std::string> ext = path;
        ext.push_back(next);
        work.emplace_back(next, std::move(ext));
      }
    }
    return {};
  };
  std::set<std::string> reported_cycles;
  for (const auto& [from, outs] : edges) {
    for (const auto& [to, info] : outs) {
      std::vector<std::string> back = find_path(to, from);
      if (back.empty()) continue;
      // back = to ... from; full cycle = from -> to -> ... -> from.
      std::vector<std::string> cycle = {from};
      cycle.insert(cycle.end(), back.begin(), back.end());
      // Canonical form: rotate so the smallest key leads (the closing
      // element is implied), so each cycle reports exactly once.
      std::vector<std::string> ring(cycle.begin(), cycle.end() - 1);
      size_t min_at = 0;
      for (size_t i = 1; i < ring.size(); ++i) {
        if (ring[i] < ring[min_at]) min_at = i;
      }
      std::rotate(ring.begin(), ring.begin() + static_cast<long>(min_at),
                  ring.end());
      std::string canon;
      for (const std::string& k : ring) canon += k + "|";
      if (!reported_cycles.insert(canon).second) continue;

      std::string chain_text;
      for (const std::string& k : cycle) {
        if (!chain_text.empty()) chain_text += " -> ";
        chain_text += "`" + k + "`";
      }
      std::string witness = info.how;
      for (size_t i = 0; i + 1 < back.size(); ++i) {
        const EdgeInfo& e = edges[back[i]][back[i + 1]];
        witness += "; " + e.how;
      }
      emit(info.path, info.line, "CL009", "cycle:" + canon,
           "potential deadlock: lock-order cycle " + chain_text +
               " — two threads taking these locks in opposite orders can "
               "block each other forever. Witness: " + witness,
           "rank the locks against common/lock_order.h and always acquire "
           "in ascending rank, or add `// cad-lint: allow(CL009) <reason>` "
           "at the acquisition that is provably unreachable concurrently");
    }
  }

  // -------------------------------------------------------------------------
  // CL010: blocking / allocating primitive while a capability is held.
  // -------------------------------------------------------------------------
  for (size_t idx : order) {
    const FuncNode& node = analysis.nodes()[idx];
    for (const PrimHit& prim : node.prims) {
      const std::vector<std::string> held = EffectiveHeld(node, prim.held);
      if (held.empty()) continue;
      if (IsLockPrimitive(prim.label)) continue;
      if (prim.sanctioned_wait) continue;
      if ((prim.mask & kEffBlock) != 0) {
        emit(prim.path, prim.line, "CL010",
             prim.path + ":" + std::to_string(prim.line) + ":" + prim.label,
             "`" + node.qual + "` invokes blocking `" + prim.label +
                 "` while holding " + JoinHeld(held) +
                 " — every waiter on that lock inherits the stall",
             "release the lock before blocking, use the condition-variable "
             "wait idiom, or add `// cad-lint: allow(CL010) <reason>`");
        continue;
      }
      // Allocation: anchor one finding per lock scope at the MutexLock
      // line, so a deliberate copy-under-lock scope needs one reasoned
      // suppression, not one per allocating line.
      const std::string& inner = held.back();
      const LockAcquire* anchor = nullptr;
      for (const LockAcquire& acq : node.acquires) {
        if (acq.key != inner || acq.line > prim.line) continue;
        if (anchor == nullptr || acq.line > anchor->line) anchor = &acq;
      }
      const std::string path = anchor != nullptr ? anchor->path : prim.path;
      const int line = anchor != nullptr ? anchor->line : prim.line;
      emit(path, line, "CL010",
           path + ":" + std::to_string(line) + ":alloc:" + inner,
           "`" + node.qual + "` allocates (`" + prim.label + "`, " +
               prim.path + ":" + std::to_string(prim.line) +
               ") inside the `" + inner + "` critical section opened here",
           "hoist the allocation out of the critical section, pre-reserve, "
           "or add `// cad-lint: allow(CL010) <reason>` at the lock site");
    }
    for (const NativeUse& native : node.natives) {
      if (native.sanctioned) continue;
      emit(native.path, native.line, "CL010",
           native.path + ":" + std::to_string(native.line) + ":native",
           "`" + node.qual +
               "` uses `Mutex::native()` outside the condition-variable "
               "wait idiom — the raw handle bypasses both the Clang "
               "analysis and the runtime lock-order tracker",
           "wrap the wait as `std::unique_lock<std::mutex> lk(mu.native()); "
           "cv.wait(lk, ...)`, or add `// cad-lint: allow(CL010) <reason>`");
    }
  }

  // -------------------------------------------------------------------------
  // CL011: GUARDED_BY / REQUIRES / EXCLUDES parity.
  // -------------------------------------------------------------------------
  std::map<std::string, std::map<std::string, const GuardedMember*>> by_cls;
  std::map<std::string, std::vector<const GuardedMember*>> by_name;
  for (const GuardedMember& g : guarded) {
    by_cls[g.cls][g.member] = &g;
    by_name[g.member].push_back(&g);
  }
  const auto is_ctor_dtor = [](const FuncNode& n) {
    return !n.cls.empty() && (n.last == n.cls || n.last == "~" + n.cls);
  };
  const std::string cl011_fix =
      "take the guarding mutex (MutexLock) in this scope, annotate the "
      "function with REQUIRES(<mutex>), or add "
      "`// cad-lint: allow(CL011) <reason>`";
  for (size_t idx : order) {
    const FuncNode& node = analysis.nodes()[idx];
    const bool exempt = is_ctor_dtor(node);
    for (const MemberAccess& acc : node.accesses) {
      const std::vector<std::string> held = EffectiveHeld(node, acc.held);
      const GuardedMember* g = nullptr;
      std::string needed;
      if (acc.object.empty() || acc.object == "this") {
        if (node.cls.empty()) continue;
        auto cls_it = by_cls.find(node.cls);
        if (cls_it == by_cls.end()) continue;
        auto mem_it = cls_it->second.find(acc.name);
        if (mem_it == cls_it->second.end()) continue;
        g = mem_it->second;
        if (exempt) continue;
        needed = g->guard_key;
        if (!HoldsKey(held, needed)) {
          emit(acc.path, acc.line, "CL011",
               acc.path + ":" + std::to_string(acc.line) + ":" + acc.name,
               "`" + node.qual + "` accesses `" + acc.name +
                   "` (GUARDED_BY " + needed + ") without holding it",
               cl011_fix);
        }
        continue;
      }
      // Explicit-object access `obj.member`: only checkable when the member
      // name maps to exactly one guarded declaration tree-wide.
      auto name_it = by_name.find(acc.name);
      if (name_it == by_name.end() || name_it->second.size() != 1) continue;
      g = name_it->second[0];
      if (exempt && node.cls == g->cls) continue;
      // The guard through the same object: `errors.mu` for
      // `errors.first_error`, or the class-canonical key when held.
      const std::string via_object =
          acc.object + "." + LastComponent(g->guard_key);
      if (HoldsKey(held, via_object) || HoldsKey(held, g->guard_key)) {
        continue;
      }
      emit(acc.path, acc.line, "CL011",
           acc.path + ":" + std::to_string(acc.line) + ":" + acc.object +
               "." + acc.name,
           "`" + node.qual + "` accesses `" + acc.object + "." + acc.name +
               "` (GUARDED_BY " + g->guard_key + " in `" + g->cls +
               "`) without holding `" + via_object + "`",
           cl011_fix);
    }
    for (const CallSite& call : node.calls) {
      // REQUIRES/EXCLUDES contracts bind to a receiver's *type*, which a
      // token-level pass cannot recover for `obj.Method()` — name-based
      // resolution would pin, say, `StreamingCad::anomaly_open`'s
      // EXCLUDES(mu_) on `engine_.anomaly_open()`. Only self-calls
      // (unqualified, `this->`, or `Class::`-qualified) are checked; Clang
      // covers the explicit-receiver shapes where it is available.
      if (call.kind == CallKind::kMethod && call.recv != "this") continue;
      const std::vector<std::string> held = EffectiveHeld(node, call.held);
      for (size_t cand : analysis.Resolve(call)) {
        if (cand == idx) continue;
        const FuncNode& cn = analysis.nodes()[cand];
        for (const std::string& req : cn.requires_locks) {
          if (HoldsKey(held, req)) continue;
          emit(call.path, call.line, "CL011",
               call.path + ":" + std::to_string(call.line) + ":req:" +
                   cn.qual + ":" + req,
               "`" + node.qual + "` calls `" + cn.qual + "` which REQUIRES(" +
                   req + "), but does not hold it",
               cl011_fix);
        }
        for (const std::string& ex : cn.excludes_locks) {
          if (!HoldsKey(held, ex)) continue;
          emit(call.path, call.line, "CL011",
               call.path + ":" + std::to_string(call.line) + ":ex:" +
                   cn.qual + ":" + ex,
               "`" + node.qual + "` calls `" + cn.qual + "` which EXCLUDES(" +
                   ex + ") while holding it — the callee re-locks and "
                   "self-deadlocks",
               "release the lock before the call, or add "
               "`// cad-lint: allow(CL011) <reason>`");
        }
      }
    }
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.message < b.message;
            });
  return findings;
}

}  // namespace cad_lint
