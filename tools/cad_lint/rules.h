// cad_lint — numbered project-invariant rules for the CAD tree.
//
// Rule catalog (see DESIGN.md "Static analysis layers" for the rationale
// behind each; tests/lint_fixtures/ holds one violating, one clean and one
// suppressed snippet per rule):
//   CL000  malformed suppression: `// cad-lint: allow(CLxxx)` without a
//          reason, or an unknown rule id. Suppressions are auditable
//          debt markers, so the reason is mandatory.
//   CL001  side effect (`=`, `++`, `--`, compound assignment) inside a
//          CAD_CHECK / CAD_DCHECK / CAD_VALIDATE condition. Conditions are
//          unevaluated at CAD_CHECK_LEVEL=off, so the work would vanish.
//   CL002  ad-hoc randomness: std::rand / srand / std::random_device /
//          time(nullptr)-style seeding anywhere outside common/rng.h.
//          Detection scores must be reproducible run-to-run (Theorem 1's
//          3-sigma rule and the DaE Ahead/Miss numbers are statistics over
//          them), so all randomness routes through cad::Rng with an
//          explicit seed.
//   CL003  range-for over an unordered_map/unordered_set. Hash iteration
//          order is not part of any contract; iterating it feeds
//          nondeterministic ordering (or FP summation order) into reports.
//          Sort keys at the emit point, use an ordered container, or
//          suppress with a reason when the loop is an order-independent
//          reduction.
//   CL004  Status/Result-returning declaration in a header without
//          [[nodiscard]]. A dropped Status is a swallowed error.
//   CL005  mutex discipline in headers, two shapes: (a) a class owns a
//          mutex but a sibling data member is neither GUARDED_BY one,
//          const, static, nor atomic; (b) an inline method body takes a
//          lock (MutexLock / lock_guard / ...) but its declaration carries
//          no EXCLUDES/REQUIRES annotation. Either way the locking story is
//          undocumented and invisible to -Wthread-safety.
//   CL006  include hygiene: header without an include guard
//          (#ifndef/#define or #pragma once), or `using namespace` in a
//          header.
//   CL007  real-time safety (tree-wide, see realtime.h): a function
//          annotated CAD_REALTIME / CAD_REALTIME_AUDITED /
//          CAD_NONALLOCATING / CAD_NONBLOCKING must not reach an
//          allocating/blocking primitive — new/delete/malloc, growing
//          container ops, std::function construction, mutex acquisition,
//          iostream/printf, throw — directly or transitively through
//          in-tree callees. Findings attach to the primitive site, so one
//          reasoned suppression covers every annotated root that funnels
//          through it.
//   CL008  real-time annotation consistency (tree-wide): an annotated
//          function may not call an annotated callee whose contract is
//          weaker than its own, and a virtual override may not drop the
//          realtime annotation its base declares.
//   CL009  potential deadlock (tree-wide, see concurrency.h): the
//          acquired-while-held graph — built from MutexLock scopes plus
//          the call graph — contains a cycle. The finding carries the
//          full lock chain and the call path that closes it; the fix is
//          the ranked hierarchy in common/lock_order.h.
//   CL010  blocking or allocating primitive invoked while a capability is
//          held (tree-wide): waits, joins, stdio, and allocation inside a
//          MutexLock scope; `cv.wait(lk)` on a body-local unique_lock is
//          the sanctioned idiom, and `Mutex::native()` is confined to it.
//   CL011  thread-safety parity off Clang (tree-wide): token-level
//          GUARDED_BY / REQUIRES / EXCLUDES enforcement so GCC-only CI
//          keeps the contract -Werror=thread-safety checks under Clang.
//
// Suppression convention: `// cad-lint: allow(CLxxx) <reason>` on the same
// line as the finding or on the line directly above it. The reason is
// required; suppressed findings stay visible to `cad_lint --fix-list`.
#ifndef CAD_TOOLS_CAD_LINT_RULES_H_
#define CAD_TOOLS_CAD_LINT_RULES_H_

#include <string>
#include <string_view>
#include <vector>

#include "lexer.h"

namespace cad_lint {

struct Finding {
  std::string path;
  int line = 0;
  std::string rule;        // "CL003"
  std::string message;     // human diagnostic
  std::string suggestion;  // machine-actionable fix hint (--fix-list column)
  bool suppressed = false;
};

struct RuleInfo {
  std::string_view id;
  std::string_view summary;
};

// The rule catalog, in id order.
const std::vector<RuleInfo>& Rules();

// Lints one file. `path` is used for diagnostics and for path-conditional
// rules (header-only rules, the common/rng.h allowlist). Findings come back
// ordered by line. Runs the single-file rules only; the tree-wide rules
// CL007/CL008 live in realtime.h and need every file at once.
std::vector<Finding> LintSource(const std::string& path,
                                std::string_view source);

// A validated `cad-lint: allow(rule)` directive. It silences `rule` on the
// comment's own line(s) and on the line directly below, so both trailing
// and line-above placements work. Shared between the single-file rules and
// the tree-wide realtime rules so both honour the same syntax.
struct Suppression {
  std::string rule;
  int first_line = 0;
  int last_line = 0;  // inclusive
};

// Parses suppression comments out of a lexed file. Malformed directives
// become CL000 findings (path left empty; the caller stamps it).
void ParseSuppressions(const LexedFile& lex, std::vector<Suppression>* sups,
                       std::vector<Finding>* findings);

bool IsSuppressed(const std::vector<Suppression>& sups,
                  const std::string& rule, int line);

}  // namespace cad_lint

#endif  // CAD_TOOLS_CAD_LINT_RULES_H_
