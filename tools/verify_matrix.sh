#!/usr/bin/env bash
# The verification matrix: builds and tests the tree under every checking
# regime the repo supports, in increasing order of cost.
#
#   1. checked    — CAD_CHECK_LEVEL=full + CAD_WERROR: stage-boundary
#                   validators live, -Werror (-Wconversion -Wshadow in
#                   src/core and src/graph), full ctest suite, then the
#                   telemetry contract (tools/check_telemetry.sh).
#   2. asan-ubsan — AddressSanitizer + UBSan with full checks, full ctest.
#   3. tsan       — ThreadSanitizer, full ctest including the
#                   check/concurrency_stress_test.cc registry + StreamingCad
#                   hammering, which exists for exactly this stage.
#   4. lint       — clang-tidy + clang-format + cad_lint via
#                   tools/run_lint.sh (clang tools skip gracefully when not
#                   installed; cad_lint is built from source and always runs).
#   5. lint-cad   — just the project linter (tools/cad_lint) over src, bench,
#                   examples and tools: fast enough for a pre-commit hook.
#   6. thread-safety — Clang build with -Werror=thread-safety armed by the
#                   CAPABILITY/GUARDED_BY annotations; SKIPs when clang++ is
#                   not installed (GCC compiles the annotations to no-ops).
#   7. engine     — focused re-run of the batch/streaming equivalence and
#                   allocation-gauge tests under the asan-ubsan and tsan
#                   presets: byte-identical drivers must stay identical when
#                   the sanitizers perturb layout and scheduling.
#   8. obs        — exposition-server smoke under the tsan preset: start,
#                   scrape /metrics, /healthz and /explain, and the
#                   concurrent-scrape-while-ingesting hammering, plus the
#                   live-scrape-vs-batch-provenance integration gate.
#   9. advisor    — root-cause advisor gates: the advisor unit suite and the
#                   advise-consuming tests under asan-ubsan, then the
#                   live-/advise-vs-offline-cad_explain byte-compare under
#                   tsan (server thread + triage under instrumentation), and
#                   the advisor_bench --smoke hit@3 quality gate.
#  10. function-effects — Clang 20+ build with -Werror=function-effects:
#                   the compiler itself verifies the CAD_REALTIME /
#                   CAD_NONALLOCATING / CAD_NONBLOCKING annotations across
#                   the call graph. SKIPs with a reason when clang++ is
#                   absent or predates the analysis.
#  11. realtime   — RealtimeSanitizer (-fsanitize=realtime) preset running
#                   the engine-equivalence, streaming, and flight-recorder
#                   alloc suites: any allocation or lock inside a
#                   [[clang::nonblocking]] region aborts at runtime. SKIPs
#                   with a reason on toolchains without rtsan support.
#  12. fleet      — the multi-tenant layer under instrumentation: the fleet
#                   unit suite (scheduler fairness bound, workspace-pool
#                   reuse, FleetEngine contracts) plus fleet_bench --smoke
#                   under asan-ubsan, then the heavy-vs-light starvation
#                   stress and the fleet lock-rank sweep under tsan — the
#                   stress exists for exactly that stage.
#  13. deadlock   — ThreadSanitizer with the runtime lock-order tracker
#                   armed (CAD_CHECK_LEVEL=full): the tracker unit tests,
#                   the streams+servers+scrapers lock-order stress, and the
#                   exposition/registry hammering all run with every
#                   acquisition feeding the acquired-after graph. Then the
#                   compiler third of the contract: clang++ must warn on the
#                   seeded ACQUIRED_BEFORE inversion fixture (one-line SKIP
#                   where clang++ is absent — CL009 and the tracker carry
#                   the contract there).
#
# Presets come from CMakePresets.json; each stage uses its own binaryDir so
# the matrix never contaminates the default build/.
#
# Usage: tools/verify_matrix.sh [stage ...]
#   with no arguments, runs all stages; otherwise only the named ones
#   (checked, asan-ubsan, tsan, lint, lint-cad, thread-safety, engine, obs,
#   advisor, fleet, function-effects, realtime, deadlock).
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2> /dev/null || echo 2)"
STAGES=("$@")
[[ ${#STAGES[@]} -eq 0 ]] && STAGES=(checked asan-ubsan tsan lint lint-cad thread-safety engine obs advisor fleet function-effects realtime deadlock)

# Probes whether clang++ accepts a compile flag (e.g. -Wfunction-effects,
# -fsanitize=realtime). Both realtime stages need Clang 20+; probing the
# flag itself — not a version number — keeps the check honest across
# vendor-patched toolchains.
clang_supports() {
  local flag="$1"
  command -v clang++ > /dev/null 2>&1 || return 1
  echo 'int main() { return 0; }' | clang++ -x c++ "$flag" -Werror \
    -o /dev/null - > /dev/null 2>&1
}

# Builds tools/cad_lint (reusing the default build dir) and prints the
# binary's path. The linter has no dependencies beyond a C++20 compiler, so
# unlike clang-tidy it never skips.
build_cad_lint() {
  local dir=build
  [[ -f $dir/CMakeCache.txt ]] || cmake -B "$dir" -S . > /dev/null
  cmake --build "$dir" --target cad_lint -j "$JOBS" > /dev/null
  echo "$dir/tools/cad_lint/cad_lint"
}

run_preset() {
  local preset="$1"
  echo
  echo "==== [$preset] configure + build + test ===="
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$JOBS"
  ctest --preset "$preset" -j "$JOBS"
}

# Builds a sanitizer preset and runs only the engine unification tests
# (driver equivalence + allocation gauge) under it.
run_engine_under() {
  local preset="$1"
  echo
  echo "==== [engine/$preset] equivalence + alloc gauge ===="
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$JOBS"
  ctest --preset "$preset" -R 'EngineEquivalenceTest|EngineAllocTest' \
    --output-on-failure
}

for stage in "${STAGES[@]}"; do
  case "$stage" in
    checked)
      run_preset checked
      echo "==== [checked] telemetry contract ===="
      tools/check_telemetry.sh build-checked
      ;;
    asan-ubsan)
      run_preset asan-ubsan
      ;;
    tsan)
      run_preset tsan
      ;;
    lint)
      echo
      echo "==== [lint] clang-tidy + clang-format ===="
      # Lint reads compile_commands.json from whichever matrix build exists.
      lint_dir=build-checked
      [[ -f $lint_dir/compile_commands.json ]] || lint_dir=build
      tools/run_lint.sh "$lint_dir"
      ;;
    lint-cad)
      echo
      echo "==== [lint-cad] project linter (tools/cad_lint) ===="
      lint_bin="$(build_cad_lint)"
      "$lint_bin" src bench examples tools
      ;;
    thread-safety)
      echo
      echo "==== [thread-safety] clang -Werror=thread-safety ===="
      if command -v clang++ > /dev/null 2>&1; then
        run_preset thread-safety
      else
        echo "SKIP: clang++ not installed; the thread-safety annotations" \
             "(src/common/thread_annotations.h) compile to no-ops under GCC." \
             "Run 'cmake --preset thread-safety' wherever Clang exists."
      fi
      ;;
    engine)
      run_engine_under asan-ubsan
      run_engine_under tsan
      ;;
    obs)
      echo
      echo "==== [obs/tsan] exposition server smoke ===="
      cmake --preset tsan
      cmake --build --preset tsan -j "$JOBS"
      ctest --preset tsan -R 'ExpositionServer|ExpositionIntegration' \
        --output-on-failure
      ;;
    advisor)
      echo
      echo "==== [advisor/asan-ubsan] advisor suite ===="
      cmake --preset asan-ubsan
      cmake --build --preset asan-ubsan -j "$JOBS"
      ctest --preset asan-ubsan \
        -R 'AdvisorTest|RootCauseTest|GroundTruthExportTest|CadExplainTest|advisor_bench_smoke' \
        --output-on-failure
      echo
      echo "==== [advisor/tsan] live /advise vs offline replay ===="
      cmake --preset tsan
      cmake --build --preset tsan -j "$JOBS"
      ctest --preset tsan -R 'LiveAdviseMatchesOfflineCadExplain' \
        --output-on-failure
      ;;
    fleet)
      echo
      echo "==== [fleet/asan-ubsan] fleet suite + bench smoke ===="
      cmake --preset asan-ubsan
      cmake --build --preset asan-ubsan -j "$JOBS"
      ctest --preset asan-ubsan \
        -R 'WeightedSchedulerTest|WorkspacePoolTest|FleetEngineTest|fleet_bench_smoke' \
        --output-on-failure
      echo
      echo "==== [fleet/tsan] starvation stress + lock-rank sweep ===="
      cmake --preset tsan
      cmake --build --preset tsan -j "$JOBS"
      ctest --preset tsan -R 'FleetStressTest|LockOrderStressTest' \
        --output-on-failure
      ;;
    function-effects)
      echo
      echo "==== [function-effects] clang -Werror=function-effects ===="
      if clang_supports -Wfunction-effects; then
        run_preset function-effects
      else
        echo "SKIP: clang++ with -Wfunction-effects (Clang 20+) not" \
             "available; the CAD_REALTIME annotations compile to no-ops" \
             "here and tools/cad_lint rules CL007/CL008 carry the contract."
      fi
      ;;
    deadlock)
      echo
      echo "==== [deadlock] TSan + runtime lock-order tracker ===="
      cmake --preset deadlock
      cmake --build --preset deadlock -j "$JOBS"
      ctest --preset deadlock \
        -R 'LockOrderTrackerTest|LockOrderStressTest|ConcurrencyStressTest|ExpositionServer' \
        --output-on-failure
      echo
      echo "==== [deadlock] clang ACQUIRED_BEFORE seeded inversion ===="
      if command -v clang++ > /dev/null 2>&1; then
        if clang++ -x c++ -std=c++20 -fsyntax-only -Isrc \
            -Wthread-safety -Wthread-safety-beta \
            tests/lint_fixtures/clang_acquired_before_bad.cc 2>&1 \
            | grep -q 'warning:.*acquired'; then
          echo "OK: clang warns on the seeded inversion" \
               "(tests/lint_fixtures/clang_acquired_before_bad.cc)"
        else
          echo "error: clang++ did not warn on the seeded ACQUIRED_BEFORE" \
               "inversion fixture" >&2
          exit 1
        fi
      else
        echo "SKIP: clang++ not installed; cad_lint CL009 and the runtime lock-order tracker carry the lock-order contract on this toolchain."
      fi
      ;;
    realtime)
      echo
      echo "==== [realtime] RealtimeSanitizer engine/streaming/recorder ===="
      if clang_supports -fsanitize=realtime; then
        cmake --preset rtsan
        cmake --build --preset rtsan -j "$JOBS"
        ctest --preset rtsan \
          -R 'EngineEquivalenceTest|EngineAllocTest|EngineAllocSweepTest|StreamingCadTest|FlightRecorderTest' \
          --output-on-failure
      else
        echo "SKIP: this toolchain lacks -fsanitize=realtime (Clang 20+);" \
             "the allocation-hook tests (tests/core/engine_alloc_test.cc)" \
             "enforce the zero-alloc contract dynamically instead."
      fi
      ;;
    *)
      echo "error: unknown stage '$stage'" \
           "(expected: checked, asan-ubsan, tsan, lint, lint-cad," \
           "thread-safety, engine, obs, advisor, fleet, function-effects," \
           "realtime, deadlock)" >&2
      exit 2
      ;;
  esac
done

echo
echo "verification matrix passed: ${STAGES[*]}"
