#!/usr/bin/env bash
# The verification matrix: builds and tests the tree under every checking
# regime the repo supports, in increasing order of cost.
#
#   1. checked    — CAD_CHECK_LEVEL=full + CAD_WERROR: stage-boundary
#                   validators live, -Werror (-Wconversion -Wshadow in
#                   src/core and src/graph), full ctest suite, then the
#                   telemetry contract (tools/check_telemetry.sh).
#   2. asan-ubsan — AddressSanitizer + UBSan with full checks, full ctest.
#   3. tsan       — ThreadSanitizer, full ctest including the
#                   check/concurrency_stress_test.cc registry + StreamingCad
#                   hammering, which exists for exactly this stage.
#   4. lint       — clang-tidy + clang-format via tools/run_lint.sh
#                   (skips gracefully when the tools are not installed).
#
# Presets come from CMakePresets.json; each stage uses its own binaryDir so
# the matrix never contaminates the default build/.
#
# Usage: tools/verify_matrix.sh [stage ...]
#   with no arguments, runs all stages; otherwise only the named ones
#   (checked, asan-ubsan, tsan, lint).
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2> /dev/null || echo 2)"
STAGES=("$@")
[[ ${#STAGES[@]} -eq 0 ]] && STAGES=(checked asan-ubsan tsan lint)

run_preset() {
  local preset="$1"
  echo
  echo "==== [$preset] configure + build + test ===="
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$JOBS"
  ctest --preset "$preset" -j "$JOBS"
}

for stage in "${STAGES[@]}"; do
  case "$stage" in
    checked)
      run_preset checked
      echo "==== [checked] telemetry contract ===="
      tools/check_telemetry.sh build-checked
      ;;
    asan-ubsan)
      run_preset asan-ubsan
      ;;
    tsan)
      run_preset tsan
      ;;
    lint)
      echo
      echo "==== [lint] clang-tidy + clang-format ===="
      # Lint reads compile_commands.json from whichever matrix build exists.
      lint_dir=build-checked
      [[ -f $lint_dir/compile_commands.json ]] || lint_dir=build
      tools/run_lint.sh "$lint_dir"
      ;;
    *)
      echo "error: unknown stage '$stage'" \
           "(expected: checked, asan-ubsan, tsan, lint)" >&2
      exit 2
      ;;
  esac
done

echo
echo "verification matrix passed: ${STAGES[*]}"
