#!/usr/bin/env bash
# Static lint stage of the verification matrix: clang-tidy over the contract
# and core subsystems (configuration in .clang-tidy) and a clang-format
# conformance check (configuration in .clang-format).
#
# Both tools are optional in minimal containers: a missing binary SKIPs its
# stage with a message instead of failing, so tools/verify_matrix.sh stays
# runnable everywhere. When the tools are present, findings are fatal.
#
# Usage: tools/run_lint.sh [compile_commands_dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

# Subsystems the ISSUE holds to a lint-clean bar.
TIDY_SOURCES=(src/check/validators.cc src/core/*.cc)
FORMAT_SOURCES=(src/check/*.h src/check/*.cc tests/check/*.cc)

status=0

if command -v clang-tidy > /dev/null 2>&1; then
  if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
    echo "error: $BUILD_DIR/compile_commands.json not found —" \
         "configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
    exit 1
  fi
  echo "== clang-tidy (src/check, src/core) =="
  if ! clang-tidy -p "$BUILD_DIR" --quiet "${TIDY_SOURCES[@]}"; then
    echo "FAIL: clang-tidy reported findings" >&2
    status=1
  fi
else
  echo "SKIP: clang-tidy not installed; .clang-tidy config is checked in" \
       "and runs wherever the tool exists"
fi

if command -v clang-format > /dev/null 2>&1; then
  echo "== clang-format (src/check, tests/check) =="
  if ! clang-format --dry-run --Werror "${FORMAT_SOURCES[@]}"; then
    echo "FAIL: clang-format found unformatted files" \
         "(fix with: clang-format -i <files>)" >&2
    status=1
  fi
else
  echo "SKIP: clang-format not installed; .clang-format config is checked in"
fi

if [[ $status -eq 0 ]]; then
  echo "lint stage passed (installed tools only; missing tools were skipped)"
fi
exit $status
