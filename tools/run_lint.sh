#!/usr/bin/env bash
# Static lint stage of the verification matrix: clang-tidy over the contract
# and core subsystems (configuration in .clang-tidy), a clang-format
# conformance check (configuration in .clang-format), and the project's own
# linter (tools/cad_lint) over the whole tree.
#
# The clang tools are optional in minimal containers: a missing binary SKIPs
# its stage with a message instead of failing, so tools/verify_matrix.sh
# stays runnable everywhere. cad_lint is built from this repo and always
# runs. When a tool runs, findings are fatal.
#
# Usage: tools/run_lint.sh [compile_commands_dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

# Subsystems the ISSUE holds to a lint-clean bar.
TIDY_SOURCES=(src/check/validators.cc src/core/*.cc)
FORMAT_SOURCES=(src/check/*.h src/check/*.cc tests/check/*.cc)

status=0

if command -v clang-tidy > /dev/null 2>&1; then
  if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
    echo "error: $BUILD_DIR/compile_commands.json not found —" \
         "configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
    exit 1
  fi
  echo "== clang-tidy (src/check, src/core) =="
  if ! clang-tidy -p "$BUILD_DIR" --quiet "${TIDY_SOURCES[@]}"; then
    echo "FAIL: clang-tidy reported findings" >&2
    status=1
  fi
else
  echo "SKIP: clang-tidy not installed; .clang-tidy config is checked in" \
       "and runs wherever the tool exists"
fi

if command -v clang-format > /dev/null 2>&1; then
  echo "== clang-format (src/check, tests/check) =="
  if ! clang-format --dry-run --Werror "${FORMAT_SOURCES[@]}"; then
    echo "FAIL: clang-format found unformatted files" \
         "(fix with: clang-format -i <files>)" >&2
    status=1
  fi
else
  echo "SKIP: clang-format not installed; .clang-format config is checked in"
fi

echo "== cad_lint (src, bench, examples, tools) =="
CAD_LINT_BUILD_DIR="$BUILD_DIR"
[[ -f "$CAD_LINT_BUILD_DIR/CMakeCache.txt" ]] || CAD_LINT_BUILD_DIR=build
[[ -f "$CAD_LINT_BUILD_DIR/CMakeCache.txt" ]] || \
  cmake -B "$CAD_LINT_BUILD_DIR" -S . > /dev/null
cmake --build "$CAD_LINT_BUILD_DIR" --target cad_lint > /dev/null
if ! "$CAD_LINT_BUILD_DIR/tools/cad_lint/cad_lint" src bench examples tools; then
  echo "FAIL: cad_lint reported violations" \
       "(worklist: cad_lint --fix-list src bench examples tools)" >&2
  status=1
fi

if [[ $status -eq 0 ]]; then
  echo "lint stage passed (installed tools only; missing tools were skipped)"
fi
exit $status
