// Figure 5: VUS-ROC and VUS-PR after PA and after DPA for every method on
// PSM, SWaT, IS-1 and IS-2 (the paper shows these as bar groups; this
// binary prints one table per measure).
#include <cstdio>
#include <map>

#include "common/strings.h"
#include "harness/harness.h"

namespace cad::bench {
namespace {

int Main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv, /*default_repeats=*/1);
  const std::vector<std::string> methods = args.MethodRoster();

  struct DatasetSetup {
    std::string name;
    int train_length;
    int test_length;
    int n_anomalies;
  };
  const std::vector<DatasetSetup> setups = {
      {"PSM", 1200, 1600, 4},
      {"SWaT", 1200, 1600, 4},
      {"IS-1", 600, 1200, 3},
      {"IS-2", 600, 1200, 3},
  };

  eval::VusOptions vus_options;
  vus_options.max_window = 16;
  vus_options.window_step = 8;
  vus_options.grid_step = 0.02;

  std::printf("Figure 5: VUS-ROC / VUS-PR after PA and DPA\n\n");

  // rows[measure][method] -> cells per dataset.
  const char* kMeasures[] = {"VUS-ROC(PA)", "VUS-ROC(DPA)", "VUS-PR(PA)",
                             "VUS-PR(DPA)"};
  std::map<std::string, std::map<std::string, std::vector<std::string>>> rows;

  for (const DatasetSetup& setup : setups) {
    const datasets::LabeledDataset dataset =
        MakeBenchDataset(setup.name, setup.train_length, setup.test_length,
                         setup.n_anomalies, args.scale);

    const std::vector<MethodResult> results =
        EvaluateMethods(dataset, methods, args.repeats);
    for (const MethodResult& result : results) {
      double roc_pa = 0.0, roc_dpa = 0.0, pr_pa = 0.0, pr_dpa = 0.0;
      for (const MethodRun& run : result.runs) {
        roc_pa += eval::VusRoc(run.scores, dataset.labels,
                               eval::Adjustment::kPointAdjust, vus_options);
        roc_dpa += eval::VusRoc(run.scores, dataset.labels,
                                eval::Adjustment::kDelayPointAdjust, vus_options);
        pr_pa += eval::VusPr(run.scores, dataset.labels,
                             eval::Adjustment::kPointAdjust, vus_options);
        pr_dpa += eval::VusPr(run.scores, dataset.labels,
                              eval::Adjustment::kDelayPointAdjust, vus_options);
      }
      const double n = static_cast<double>(result.runs.size());
      rows[kMeasures[0]][result.name].push_back(Percent(roc_pa / n));
      rows[kMeasures[1]][result.name].push_back(Percent(roc_dpa / n));
      rows[kMeasures[2]][result.name].push_back(Percent(pr_pa / n));
      rows[kMeasures[3]][result.name].push_back(Percent(pr_dpa / n));
    }
    std::fprintf(stderr, "[fig5] %s done\n", dataset.name.c_str());
  }

  for (const char* measure : kMeasures) {
    std::printf("%s\n", measure);
    TablePrinter table({"Method", "PSM", "SWaT", "IS-1", "IS-2"});
    for (const std::string& name : methods) {
      std::vector<std::string> row = {name};
      const auto& cells = rows[measure][name];
      row.insert(row.end(), cells.begin(), cells.end());
      table.AddRow(std::move(row));
    }
    table.Print();
    std::printf("\n");
  }
  args.WriteTelemetryIfRequested();
  return 0;
}

}  // namespace
}  // namespace cad::bench

int main(int argc, char** argv) { return cad::bench::Main(argc, argv); }
