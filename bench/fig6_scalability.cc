// Figure 6: scalability of CAD on the five IS datasets (143 .. 1,266
// sensors): F1_PA, F1_DPA and Time Per Round (TPR) versus sensor count.
// Only CAD runs here, as in the paper. The step is widened to w/10 on these
// profiles so the sweep stays laptop-scale; TPR is per-round and therefore
// step-independent.
#include <cstdio>

#include "baselines/cad_adapter.h"
#include "common/strings.h"
#include "eval/threshold.h"
#include "harness/harness.h"

namespace cad::bench {
namespace {

int Main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv, /*default_repeats=*/1);

  std::printf("Figure 6: CAD scalability on IS-1 .. IS-5\n\n");
  TablePrinter table({"Dataset", "#Sensors", "F1_PA", "F1_DPA", "TPR (ms)",
                      "Rounds", "Detect (s)"});

  for (const char* profile_name : {"IS-1", "IS-2", "IS-3", "IS-4", "IS-5"}) {
    const std::string name = profile_name;
    datasets::LabeledDataset dataset =
        MakeBenchDataset(name, 700, 1600, 4, args.scale);
    dataset.recommended.step = std::max(1, dataset.recommended.window / 10);

    core::CadDetector detector(dataset.recommended);
    const core::DetectionReport report =
        detector.Detect(dataset.test, &dataset.train).ValueOrDie();

    const double pa = eval::BestF1Search(report.point_scores, dataset.labels,
                                         eval::Adjustment::kPointAdjust, 0.005)
                          .f1;
    const double dpa =
        eval::BestF1Search(report.point_scores, dataset.labels,
                           eval::Adjustment::kDelayPointAdjust, 0.005)
            .f1;
    table.AddRow({name, std::to_string(dataset.test.n_sensors()), Percent(pa),
                  Percent(dpa), FormatDouble(report.seconds_per_round * 1e3, 2),
                  std::to_string(report.rounds.size()),
                  Seconds(report.detect_seconds, 2)});
    std::fprintf(stderr, "[fig6] %s done\n", name.c_str());
  }
  table.Print();
  std::printf(
      "\nTPR should grow subquadratically with the sensor count\n"
      "(correlation matrix O(n^2 w) dominates; Louvain is O(n log n)).\n");
  args.WriteTelemetryIfRequested();
  return 0;
}

}  // namespace
}  // namespace cad::bench

int main(int argc, char** argv) { return cad::bench::Main(argc, argv); }
