// Extended-roster comparison: the paper's ten methods plus the six
// additional related-work baselines implemented here (kNN, HBOS, COPOD,
// PCA, LODA, MP), on the PSM and IS-1 analogues. Not a paper table — this
// quantifies where CAD sits in the broader related-work landscape the paper
// surveys in Section II.
#include <cstdio>

#include "common/strings.h"
#include "eval/rank.h"
#include "harness/harness.h"

namespace cad::bench {
namespace {

int Main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv, /*default_repeats=*/1);
  const std::vector<std::string> methods =
      args.methods.empty() ? baselines::ExtendedMethodNames() : args.methods;

  struct DatasetSetup {
    std::string name;
    int train_length;
    int test_length;
    int n_anomalies;
  };
  const std::vector<DatasetSetup> setups = {
      {"PSM", 1500, 2000, 5},
      {"IS-1", 700, 1400, 4},
  };

  std::printf("Extended roster: F1_PA / F1_DPA on PSM and IS-1 analogues\n\n");

  std::vector<std::vector<double>> rank_columns(setups.size() * 2);
  std::vector<std::vector<std::string>> cells(methods.size());
  for (size_t d = 0; d < setups.size(); ++d) {
    const datasets::LabeledDataset dataset =
        MakeBenchDataset(setups[d].name, setups[d].train_length,
                         setups[d].test_length, setups[d].n_anomalies,
                         args.scale);
    const std::vector<MethodResult> results =
        EvaluateMethods(dataset, methods, args.repeats);
    for (size_t m = 0; m < results.size(); ++m) {
      const MetricSummary pa = BestF1Summary(results[m], dataset.labels,
                                             eval::Adjustment::kPointAdjust);
      const MetricSummary dpa = BestF1Summary(
          results[m], dataset.labels, eval::Adjustment::kDelayPointAdjust);
      rank_columns[2 * d].push_back(pa.mean);
      rank_columns[2 * d + 1].push_back(dpa.mean);
      cells[m].push_back(Percent(pa.mean));
      cells[m].push_back(Percent(dpa.mean));
    }
    std::fprintf(stderr, "[extended] %s done\n", dataset.name.c_str());
  }

  const std::vector<double> avg_rank = eval::AverageRanks(rank_columns);
  TablePrinter table({"Method", "PSM F1_PA", "PSM F1_DPA", "IS-1 F1_PA",
                      "IS-1 F1_DPA", "Rank"});
  for (size_t m = 0; m < methods.size(); ++m) {
    std::vector<std::string> row = {methods[m]};
    row.insert(row.end(), cells[m].begin(), cells[m].end());
    row.push_back(FormatDouble(avg_rank[m], 1));
    table.AddRow(std::move(row));
  }
  table.Print();
  args.WriteTelemetryIfRequested();
  return 0;
}

}  // namespace
}  // namespace cad::bench

int main(int argc, char** argv) { return cad::bench::Main(argc, argv); }
