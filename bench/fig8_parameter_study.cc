// Figure 8: parameter study of CAD's five knobs — w/|T|, s/w, tau, theta and
// k — on PSM, one SMD subset and SWaT, reporting F1_PA and F1_DPA per
// setting. Also runs the DESIGN.md §4 ablations: the eta-sigma rule vs a
// fixed xi threshold, the community vs global (literal Eq. 3) RC
// normalization, and the RC window length.
#include <cstdio>
#include <functional>

#include "common/strings.h"
#include "core/cad_detector.h"
#include "eval/threshold.h"
#include "harness/harness.h"

namespace cad::bench {
namespace {

struct Study {
  std::string name;
  datasets::LabeledDataset dataset;
};

struct F1Pair {
  double pa = 0.0;
  double dpa = 0.0;
};

F1Pair RunCad(const Study& study, const core::CadOptions& options) {
  core::CadDetector detector(options);
  Result<core::DetectionReport> report = detector.Detect(
      study.dataset.test, study.dataset.has_train() ? &study.dataset.train
                                                    : nullptr);
  if (!report.ok()) return {};
  F1Pair f1;
  f1.pa = eval::BestF1Search(report.value().point_scores, study.dataset.labels,
                             eval::Adjustment::kPointAdjust, 0.005)
              .f1;
  f1.dpa = eval::BestF1Search(report.value().point_scores,
                              study.dataset.labels,
                              eval::Adjustment::kDelayPointAdjust, 0.005)
               .f1;
  return f1;
}

void Sweep(const std::vector<Study>& studies, const std::string& title,
           const std::vector<std::string>& labels,
           const std::function<core::CadOptions(const Study&, size_t)>& make) {
  std::printf("%s\n", title.c_str());
  std::vector<std::string> header = {"Dataset"};
  for (const std::string& label : labels) {
    header.push_back(label + " PA");
    header.push_back(label + " DPA");
  }
  TablePrinter table(header);
  for (const Study& study : studies) {
    std::vector<std::string> row = {study.name};
    for (size_t i = 0; i < labels.size(); ++i) {
      const F1Pair f1 = RunCad(study, make(study, i));
      row.push_back(Percent(f1.pa));
      row.push_back(Percent(f1.dpa));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf("\n");
}

int Main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv, /*default_repeats=*/1);

  std::vector<Study> studies;
  studies.push_back({"PSM", MakeBenchDataset("PSM", 1200, 1600, 4, args.scale)});
  studies.push_back(
      {"SMD-7", MakeBenchDataset("SMD-7", 800, 1100, 3, args.scale)});
  studies.push_back(
      {"SWaT", MakeBenchDataset("SWaT", 1200, 1600, 4, args.scale)});

  std::printf("Figure 8: parameter study (F1_PA / F1_DPA per setting)\n\n");

  {
    const std::vector<double> ratios = {0.01, 0.02, 0.03, 0.05, 0.10};
    std::vector<std::string> labels;
    for (double r : ratios) labels.push_back("w/|T|=" + FormatDouble(r, 2));
    Sweep(studies, "Effect of w (window / series length):", labels,
          [&](const Study& study, size_t i) {
            core::CadOptions options = study.dataset.recommended;
            options.window = std::max(
                16, static_cast<int>(study.dataset.test.length() * ratios[i]));
            options.step = std::max(1, options.window / 50);
            return options;
          });
  }
  {
    const std::vector<double> ratios = {0.02, 0.05, 0.10, 0.20};
    std::vector<std::string> labels;
    for (double r : ratios) labels.push_back("s/w=" + FormatDouble(r, 2));
    Sweep(studies, "Effect of s (step / window):", labels,
          [&](const Study& study, size_t i) {
            core::CadOptions options = study.dataset.recommended;
            options.step = std::max(
                1, static_cast<int>(options.window * ratios[i]));
            return options;
          });
  }
  {
    const std::vector<double> taus = {0.1, 0.3, 0.5, 0.7, 0.9};
    std::vector<std::string> labels;
    for (double tau : taus) labels.push_back("tau=" + FormatDouble(tau, 1));
    Sweep(studies, "Effect of tau (correlation threshold):", labels,
          [&](const Study& study, size_t i) {
            core::CadOptions options = study.dataset.recommended;
            options.tau = taus[i];
            return options;
          });
  }
  {
    const std::vector<double> thetas = {0.5, 0.7, 0.8, 0.9, 0.95};
    std::vector<std::string> labels;
    for (double theta : thetas) labels.push_back("th=" + FormatDouble(theta, 2));
    Sweep(studies, "Effect of theta (outlier threshold, community-normalized):",
          labels, [&](const Study& study, size_t i) {
            core::CadOptions options = study.dataset.recommended;
            options.theta = thetas[i];
            return options;
          });
  }
  {
    const std::vector<int> ks = {5, 10, 15, 20};
    std::vector<std::string> labels;
    for (int k : ks) labels.push_back("k=" + std::to_string(k));
    Sweep(studies, "Effect of k (nearest neighbours):", labels,
          [&](const Study& study, size_t i) {
            core::CadOptions options = study.dataset.recommended;
            options.k = ks[i];
            return options;
          });
  }

  std::printf("Ablations (DESIGN.md section 4)\n\n");
  {
    Sweep(studies, "Abnormal-round rule: adaptive eta-sigma vs fixed xi:",
          {"3-sigma", "xi=2", "xi=4"},
          [&](const Study& study, size_t i) {
            core::CadOptions options = study.dataset.recommended;
            if (i > 0) {
              options.use_sigma_rule = false;
              options.fixed_xi = i == 1 ? 2 : 4;
            }
            return options;
          });
  }
  {
    Sweep(studies,
          "RC normalization: community (default) vs global (literal Eq. 3):",
          {"community", "global"},
          [&](const Study& study, size_t i) {
            core::CadOptions options = study.dataset.recommended;
            if (i == 1) {
              options.rc_global_normalization = true;
              options.theta = 0.3;  // the paper's setting for this form
            }
            return options;
          });
  }
  {
    const std::vector<double> fractions = {1.0, 0.75, 0.5, 0.25, 0.05};
    std::vector<std::string> labels;
    for (double f : fractions) labels.push_back("mark=" + FormatDouble(f, 2));
    Sweep(studies,
          "Round footprint (trailing window fraction marked abnormal):",
          labels, [&](const Study& study, size_t i) {
            core::CadOptions options = study.dataset.recommended;
            options.window_mark_fraction = fractions[i];
            return options;
          });
  }
  {
    Sweep(studies,
          "Correlation maintenance: direct vs incremental (same output):",
          {"direct", "incremental"},
          [&](const Study& study, size_t i) {
            core::CadOptions options = study.dataset.recommended;
            options.incremental_correlation = i == 1;
            return options;
          });
  }
  {
    Sweep(studies, "Correlation measure: Pearson (paper) vs Spearman:",
          {"pearson", "spearman"},
          [&](const Study& study, size_t i) {
            core::CadOptions options = study.dataset.recommended;
            options.use_spearman = i == 1;
            return options;
          });
  }
  {
    const std::vector<int> windows = {2, 4, 8, 16, 0};
    std::vector<std::string> labels = {"rcw=2", "rcw=4", "rcw=8", "rcw=16",
                                       "rcw=inf"};
    Sweep(studies, "RC window (0 = full-history prefix average):", labels,
          [&](const Study& study, size_t i) {
            core::CadOptions options = study.dataset.recommended;
            options.rc_window = windows[i];
            return options;
          });
  }
  args.WriteTelemetryIfRequested();
  return 0;
}

}  // namespace
}  // namespace cad::bench

int main(int argc, char** argv) { return cad::bench::Main(argc, argv); }
