// Table VII: testing time of all methods (seconds) plus CAD's Time Per
// Round (TPR, milliseconds) — the quantity that determines the maximum
// real-time sampling frequency freq < s / TPR (paper Section VI-D).
#include <cstdio>
#include <map>

#include "common/strings.h"
#include "harness/harness.h"

namespace cad::bench {
namespace {

int Main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv, /*default_repeats=*/1);
  const std::vector<std::string> methods = args.MethodRoster();

  struct DatasetSetup {
    std::string name;
    int train_length;
    int test_length;
    int n_anomalies;
  };
  const std::vector<DatasetSetup> setups = {
      {"PSM", 1500, 2000, 5},  {"SWaT", 1500, 2200, 5}, {"IS-1", 700, 1400, 4},
      {"IS-2", 700, 1400, 4},  {"SMD-1", 800, 1100, 3},
  };

  std::printf("Table VII: testing time (seconds); TPR = CAD ms per round\n\n");

  std::map<std::string, std::vector<std::string>> rows;
  std::vector<std::string> tpr_row = {"TPR (ms)"};
  std::vector<std::string> tpr_p95_row = {"TPR p95 (ms)"};
  std::vector<std::string> tpr_p99_row = {"TPR p99 (ms)"};
  for (const DatasetSetup& setup : setups) {
    const datasets::LabeledDataset dataset =
        MakeBenchDataset(setup.name, setup.train_length, setup.test_length,
                         setup.n_anomalies, args.scale);

    const std::vector<MethodResult> results =
        EvaluateMethods(dataset, methods, args.repeats);
    for (const MethodResult& result : results) {
      double score_seconds = 0.0;
      for (const MethodRun& run : result.runs) {
        score_seconds += run.score_seconds;
      }
      score_seconds /= static_cast<double>(result.runs.size());
      rows[result.name].push_back(Seconds(score_seconds, 2));
      if (result.name == "CAD") {
        const MethodRun& run = result.runs[0];
        tpr_row.push_back(FormatDouble(run.seconds_per_round * 1e3, 2));
        tpr_p95_row.push_back(FormatDouble(run.round_latency.p95 * 1e3, 2));
        tpr_p99_row.push_back(FormatDouble(run.round_latency.p99 * 1e3, 2));
      }
    }
    std::fprintf(stderr, "[table7] %s done\n", dataset.name.c_str());
  }

  TablePrinter table({"Method", "PSM", "SWaT", "IS-1", "IS-2", "SMD"});
  for (const std::string& name : methods) {
    std::vector<std::string> row = {name};
    row.insert(row.end(), rows[name].begin(), rows[name].end());
    table.AddRow(std::move(row));
    if (name == "CAD") {
      table.AddRow(tpr_row);
      table.AddRow(tpr_p95_row);
      table.AddRow(tpr_p99_row);
    }
  }
  table.Print();

  std::printf(
      "\nReal-time capacity: CAD sustains sampling frequencies up to\n"
      "freq < step / TPR for each dataset (paper Section VI-D). The p95/p99\n"
      "rows bound tail rounds (TPR is the mean of per-round latencies).\n");
  args.WriteTelemetryIfRequested();
  return 0;
}

}  // namespace
}  // namespace cad::bench

int main(int argc, char** argv) { return cad::bench::Main(argc, argv); }
