// Figure 4: on the 28 SMD subsets, the number of subsets where CAD's Ahead
// (vs each baseline) is at least x, and where CAD's Miss is at most x, as
// the ratio threshold x varies from 0 to 1. The paper plots these counts as
// curves; this binary prints the series at x = 0, 0.1, ..., 1.0.
#include <cstdio>
#include <map>

#include "common/strings.h"
#include "check/check.h"
#include "eval/ahead_miss.h"
#include "harness/harness.h"

namespace cad::bench {
namespace {

int Main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv, /*default_repeats=*/1);
  const std::vector<std::string> methods = args.MethodRoster();
  const int n_subsets = 28;

  std::printf("Figure 4: #SMD subsets with Ahead >= x / Miss <= x (CAD vs M2)\n\n");

  std::map<std::string, std::vector<double>> ahead, miss;
  for (int subset = 1; subset <= n_subsets; ++subset) {
    const datasets::LabeledDataset dataset = MakeBenchDataset(
        "SMD-" + std::to_string(subset), 800, 1100, 3, args.scale);

    const std::vector<MethodResult> results = EvaluateMethods(
        dataset, methods, args.repeats, subset * 977, /*cad_warmup=*/false);
    const MethodResult* cad = nullptr;
    for (const MethodResult& r : results) {
      if (r.name == "CAD") cad = &r;
    }
    CAD_CHECK(cad != nullptr, "Figure 4 needs CAD in the roster");
    const eval::Labels m1 =
        BinarizeAtBestThreshold(cad->runs[0].scores, dataset.labels,
                                eval::Adjustment::kDelayPointAdjust);
    for (const MethodResult& result : results) {
      if (result.name == "CAD") continue;
      const eval::Labels m2 =
          BinarizeAtBestThreshold(result.runs[0].scores, dataset.labels,
                                  eval::Adjustment::kDelayPointAdjust);
      const eval::AheadMiss cmp = eval::CompareAheadMiss(m1, m2, dataset.labels);
      ahead[result.name].push_back(cmp.ahead);
      miss[result.name].push_back(cmp.miss);
    }
    std::fprintf(stderr, "[fig4] subset %d/%d done\n", subset, n_subsets);
  }

  auto print_series = [&](const char* title,
                          const std::map<std::string, std::vector<double>>& data,
                          bool at_least) {
    std::printf("%s\n", title);
    std::vector<std::string> header = {"Method"};
    for (int i = 0; i <= 10; ++i) {
      header.push_back("x=" + FormatDouble(i / 10.0, 1));
    }
    TablePrinter table(header);
    for (const auto& [name, values] : data) {
      std::vector<std::string> row = {name};
      for (int i = 0; i <= 10; ++i) {
        const double x = i / 10.0;
        int count = 0;
        for (double v : values) {
          if (at_least ? v >= x - 1e-12 : v <= x + 1e-12) ++count;
        }
        row.push_back(std::to_string(count));
      }
      table.AddRow(std::move(row));
    }
    table.Print();
    std::printf("\n");
  };

  print_series("#subsets with Ahead >= x:", ahead, /*at_least=*/true);
  print_series("#subsets with Miss <= x:", miss, /*at_least=*/false);
  args.WriteTelemetryIfRequested();
  return 0;
}

}  // namespace
}  // namespace cad::bench

int main(int argc, char** argv) { return cad::bench::Main(argc, argv); }
