// fleet_bench — multi-tenant scale benchmark for fleet::FleetEngine,
// writing BENCH_fleet.json.
//
// Two measurements per tenant scale:
//
//  1. End-to-end throughput: N tenants stream the same synthetic sensor
//     data through the full machinery (bounded queues -> weighted scheduler
//     -> shared worker pool -> per-tenant DetectionEngine on pooled
//     arenas). Reports fleet rounds/sec, p50/p99 round latency (from the
//     cad_fleet_round_seconds histogram), backpressure counts, workspace
//     pool stats, and the steady-state allocation rate — this binary links
//     cad_alloc_hook, so allocs are a real operator-new count, and the run
//     *gates* on steady allocs/round staying under 1.0 (the DESIGN.md
//     contract is 0; the threshold tolerates the engine's sparse
//     co-appearance growth while catching harness-scale leaks).
//
//  2. Scheduler fairness under contention: N permanently-backlogged tenants
//     with a mixed weight profile (every 16th tenant weight 8, the rest
//     weight 1) served by the worker count's worth of spinning threads.
//     Fairness is the max/min per-tenant *normalized* service ratio
//     (quanta_i / weight_i). The raw post-contention snapshot carries
//     OS-stall noise (a descheduled worker holds its acquired tenant
//     hostage; see scheduler.h), so the gate applies after a deficit-sized
//     single-threaded settle phase that lets the scheduler repay deferred
//     credit — a genuinely unfair scheduler stays skewed through it. Gated
//     at ratio <= 1.25; a queue-draining scheduler measures 8-100x, so the
//     gate has teeth. Both raw and settled figures land in the JSON.
//
// Usage: fleet_bench [--smoke] [--out PATH] [--metrics-out PATH] [--tenants N]
//   --smoke            one small scale for ctest (a few seconds)
//   --tenants N        override the scale list with a single N
//   --metrics-out PATH dump the live tenant-labelled /metrics exposition of
//                      the last throughput run (tools/check_telemetry.sh
//                      validates metric-name hygiene against it)
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/alloc_tracker.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/cad_options.h"
#include "datasets/generator.h"
#include "fleet/fleet_engine.h"
#include "fleet/scheduler.h"
#include "obs/metrics.h"
#include "ts/multivariate_series.h"

namespace cad {
namespace {

struct FleetBenchConfig {
  std::vector<int> tenant_scales = {1024, 4096};
  int n_workers = 4;
  int n_producers = 4;
  int n_sensors = 8;
  int window = 32;
  int step = 4;
  int rounds_per_tenant = 12;
  int queue_capacity = 128;
  int quantum_samples = 32;
  int alloc_warmup_rounds = 4;  // rounds_per_tenant is small; audit the tail
  // Fairness phase: target normalized quanta per weight-1 tenant, and the
  // gate on the max/min normalized service ratio. The per-tenant count must
  // dwarf worker-stall artifacts: when the OS deschedules a worker
  // mid-quantum its tenant is held hostage (single-ownership) and the
  // snapshot catches it lagging by however far the horizon moved — a
  // fixed-size absolute spread (tens of quanta per stall), so a long run
  // amortizes it into a few percent of ratio while real unfairness scales
  // with the run and stays caught.
  int fairness_quanta_per_tenant = 2000;
  double max_fairness_ratio = 1.25;
  double max_steady_allocs_per_round = 1.0;

  int samples_per_tenant() const {
    return window + (rounds_per_tenant - 1) * step;
  }
};

struct ThroughputResult {
  int tenants = 0;
  uint64_t rounds = 0;
  uint64_t steady_rounds = 0;
  double rounds_per_sec = 0.0;
  double p50_round_seconds = 0.0;
  double p99_round_seconds = 0.0;
  double steady_allocs_per_round = 0.0;
  uint64_t samples_accepted = 0;
  uint64_t samples_rejected = 0;
  uint64_t pool_created = 0;
  uint64_t quanta = 0;
  double total_seconds = 0.0;
};

struct FairnessResult {
  int tenants = 0;
  uint64_t quanta = 0;
  // Measured right after the contended multi-worker phase. Includes
  // worker-stall noise: a worker the OS deschedules mid-quantum holds its
  // tenant's service hostage (single-ownership), so the raw snapshot can
  // catch a few tenants mid-lag.
  double raw_service_ratio = 0.0;
  double raw_normalized_spread = 0.0;
  // Measured after the settle phase repays stall-deferred credit (the
  // scheduler services lagging tenants back-to-back until parity). This is
  // the gated figure: a genuinely unfair scheduler does not converge here.
  double service_ratio = 0.0;      // max/min of quanta_i / weight_i
  double normalized_spread = 0.0;  // max - min of quanta_i / weight_i
  uint64_t settle_quanta = 0;
  double total_seconds = 0.0;
};

void NormalizedServiceRange(const fleet::WeightedScheduler& scheduler,
                            double* min_service, double* max_service) {
  *min_service = 1e300;
  *max_service = 0.0;
  for (const fleet::WeightedScheduler::TenantStats& tenant :
       scheduler.StatsSnapshot()) {
    const double normalized =
        static_cast<double>(tenant.quanta) / tenant.weight;
    *min_service = std::min(*min_service, normalized);
    *max_service = std::max(*max_service, normalized);
  }
}

ThroughputResult RunThroughput(const FleetBenchConfig& config, int n_tenants,
                               const ts::MultivariateSeries& data,
                               std::string* metrics_text) {
  fleet::FleetOptions fleet_options;
  fleet_options.n_workers = config.n_workers;
  fleet_options.queue_capacity = config.queue_capacity;
  fleet_options.quantum_samples = config.quantum_samples;
  fleet_options.alloc_warmup_rounds = config.alloc_warmup_rounds;
  obs::Registry registry;
  fleet_options.metrics_registry = &registry;
  fleet::FleetEngine fleet(fleet_options);

  core::CadOptions cad_options;
  cad_options.window = config.window;
  cad_options.step = config.step;
  cad_options.k = 3;
  cad_options.tau = 0.55;
  cad_options.flight_log_capacity = 0;  // scale run; no per-tenant ring
  for (int t = 0; t < n_tenants; ++t) {
    (void)fleet
        .AddTenant("tenant_" + std::to_string(t), config.n_sensors,
                   cad_options)
        .ValueOrDie();
  }
  if (!fleet.Start().ok()) std::abort();

  // Producers spray time points across tenant shards: every tenant sees the
  // same series, pushed in time order, with retry on backpressure so each
  // tenant completes exactly rounds_per_tenant rounds.
  const int samples = config.samples_per_tenant();
  Stopwatch watch;
  std::vector<std::thread> producers;
  producers.reserve(static_cast<size_t>(config.n_producers));
  for (int p = 0; p < config.n_producers; ++p) {
    producers.emplace_back([&, p] {
      std::vector<double> sample(static_cast<size_t>(config.n_sensors));
      for (int t = 0; t < samples; ++t) {
        for (int i = 0; i < config.n_sensors; ++i) {
          sample[static_cast<size_t>(i)] = data.value(i, t);
        }
        for (int tenant = p; tenant < n_tenants;
             tenant += config.n_producers) {
          while (!fleet.Push(tenant, sample).ValueOrDie()) {
            std::this_thread::yield();
          }
        }
      }
    });
  }
  for (std::thread& producer : producers) producer.join();
  fleet.Drain();
  const double elapsed = watch.ElapsedSeconds();
  // Snapshot the tenant-labelled exposition while the fleet is live:
  // tools/check_telemetry.sh feeds this through the metric-name hygiene
  // gate (--metrics-out).
  if (metrics_text != nullptr) *metrics_text = fleet.MetricsText();
  fleet.Stop();

  const obs::Snapshot snapshot = registry.TakeSnapshot();
  ThroughputResult result;
  result.tenants = n_tenants;
  result.total_seconds = elapsed;
  result.rounds = snapshot.FindCounter("cad_fleet_rounds_total")->value;
  result.steady_rounds =
      snapshot.FindCounter("cad_fleet_steady_rounds_total")->value;
  const uint64_t steady_allocs =
      snapshot.FindCounter("cad_fleet_steady_allocs_total")->value;
  result.steady_allocs_per_round =
      result.steady_rounds > 0
          ? static_cast<double>(steady_allocs) /
                static_cast<double>(result.steady_rounds)
          : 0.0;
  result.rounds_per_sec =
      elapsed > 0.0 ? static_cast<double>(result.rounds) / elapsed : 0.0;
  const obs::HistogramSample* latency =
      snapshot.FindHistogram("cad_fleet_round_seconds");
  result.p50_round_seconds = latency->Quantile(0.50);
  result.p99_round_seconds = latency->Quantile(0.99);
  result.samples_accepted =
      snapshot.FindCounter("cad_fleet_samples_total")->value;
  result.samples_rejected =
      snapshot.FindCounter("cad_fleet_samples_rejected_total")->value;
  result.quanta = snapshot.FindCounter("cad_fleet_quanta_total")->value;
  result.pool_created = fleet.pool_stats().created;
  return result;
}

FairnessResult RunFairness(const FleetBenchConfig& config, int n_tenants) {
  // Mixed weight profile: every 16th tenant is heavy.
  std::vector<double> weights(static_cast<size_t>(n_tenants), 1.0);
  double weight_sum = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    if (i % 16 == 0) weights[i] = 8.0;
    weight_sum += weights[i];
  }
  fleet::WeightedScheduler scheduler(weights);
  for (int t = 0; t < n_tenants; ++t) scheduler.MakeReady(t);

  // Permanently-backlogged service: every quantum immediately re-queues, so
  // the stride bound applies exactly; threads contend like the worker pool.
  const uint64_t target_quanta =
      static_cast<uint64_t>(static_cast<double>(
                                config.fairness_quanta_per_tenant) *
                            weight_sum);
  Stopwatch watch;
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(config.n_workers));
  for (int w = 0; w < config.n_workers; ++w) {
    workers.emplace_back([&] {
      while (scheduler.total_quanta() < target_quanta) {
        int tenant = -1;
        if (!scheduler.TryAcquire(&tenant)) {
          std::this_thread::yield();
          continue;
        }
        scheduler.Release(tenant, /*has_more_work=*/true);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  FairnessResult result;
  result.tenants = n_tenants;
  result.quanta = scheduler.total_quanta();
  double min_service = 0.0;
  double max_service = 0.0;
  NormalizedServiceRange(scheduler, &min_service, &max_service);
  result.raw_service_ratio =
      min_service > 0.0 ? max_service / min_service : 1e300;
  result.raw_normalized_spread = max_service - min_service;

  // Settle phase: single-threaded service sized to the measured deficit,
  // plus one full weight round for ties. The stride heap serves the lagging
  // tenants back-to-back until parity, so stall-deferred credit is repaid;
  // a scheduler with a real bias would stay skewed through this and fail
  // the gate below.
  double deficit = 0.0;
  for (const fleet::WeightedScheduler::TenantStats& tenant :
       scheduler.StatsSnapshot()) {
    deficit += max_service * tenant.weight -
               static_cast<double>(tenant.quanta);
  }
  const uint64_t settle =
      static_cast<uint64_t>(deficit + weight_sum) + 1;
  for (uint64_t i = 0; i < settle; ++i) {
    int tenant = -1;
    if (!scheduler.TryAcquire(&tenant)) break;
    scheduler.Release(tenant, /*has_more_work=*/true);
  }
  result.settle_quanta = settle;
  NormalizedServiceRange(scheduler, &min_service, &max_service);
  result.service_ratio = min_service > 0.0 ? max_service / min_service : 1e300;
  result.normalized_spread = max_service - min_service;
  result.total_seconds = watch.ElapsedSeconds();
  return result;
}

int Main(int argc, char** argv) {
  common::LinkAllocHook();

  FleetBenchConfig config;
  bool smoke = false;
  std::string out_path = "BENCH_fleet.json";
  std::string metrics_out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--tenants") == 0 && i + 1 < argc) {
      config.tenant_scales = {std::atoi(argv[++i])};
    } else {
      std::fprintf(stderr,
                   "usage: fleet_bench [--smoke] [--out PATH] "
                   "[--metrics-out PATH] [--tenants N]\n");
      return 2;
    }
  }
  if (smoke) {
    config.tenant_scales = {64};
  }

  // One shared series: every tenant runs the same 8-sensor stream, which
  // keeps generation out of the measured window at 10k-tenant scale.
  Rng rng(2026);
  datasets::GeneratorOptions gen_options;
  gen_options.n_sensors = config.n_sensors;
  gen_options.n_communities = 2;
  datasets::SensorNetworkGenerator generator(gen_options, &rng);
  const ts::MultivariateSeries data =
      generator.Generate(config.samples_per_tenant(), &rng);

  bool failed = false;
  std::string metrics_text;
  std::vector<ThroughputResult> throughput;
  std::vector<FairnessResult> fairness;
  for (int scale : config.tenant_scales) {
    std::fprintf(stderr, "[fleet_bench] %d tenants, %d workers: throughput...\n",
                 scale, config.n_workers);
    throughput.push_back(RunThroughput(
        config, scale, data,
        metrics_out_path.empty() ? nullptr : &metrics_text));
    const ThroughputResult& tp = throughput.back();
    std::fprintf(stderr,
                 "[fleet_bench]   %llu rounds, %.0f rounds/sec, p99 %.1fus, "
                 "%.3f steady allocs/round, %llu rejected\n",
                 static_cast<unsigned long long>(tp.rounds),
                 tp.rounds_per_sec, tp.p99_round_seconds * 1e6,
                 tp.steady_allocs_per_round,
                 static_cast<unsigned long long>(tp.samples_rejected));
    if (tp.steady_rounds == 0) {
      std::fprintf(stderr,
                   "[fleet_bench] FAIL: the steady-state allocation audit "
                   "never engaged at %d tenants\n",
                   scale);
      failed = true;
    }
#if !CAD_VALIDATE_ENABLED
    // Contract validators allocate on the side at CAD_CHECK_LEVEL=full; the
    // steady-state gate only binds in non-validating builds.
    if (common::AllocHookInstalled() &&
        tp.steady_allocs_per_round > config.max_steady_allocs_per_round) {
      std::fprintf(stderr,
                   "[fleet_bench] FAIL: %.3f steady allocs/round at %d "
                   "tenants (max %.1f)\n",
                   tp.steady_allocs_per_round, scale,
                   config.max_steady_allocs_per_round);
      failed = true;
    }
#endif

    std::fprintf(stderr, "[fleet_bench] %d tenants: fairness...\n", scale);
    fairness.push_back(RunFairness(config, scale));
    const FairnessResult& fr = fairness.back();
    std::fprintf(stderr,
                 "[fleet_bench]   %llu quanta, service ratio %.4f settled "
                 "(%.4f raw, spread %.1f raw -> %.1f)\n",
                 static_cast<unsigned long long>(fr.quanta), fr.service_ratio,
                 fr.raw_service_ratio, fr.raw_normalized_spread,
                 fr.normalized_spread);
    if (fr.service_ratio > config.max_fairness_ratio) {
      std::fprintf(stderr,
                   "[fleet_bench] FAIL: fairness ratio %.4f at %d tenants "
                   "(max %.2f)\n",
                   fr.service_ratio, scale, config.max_fairness_ratio);
      failed = true;
    }
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "[fleet_bench] cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"fleet\",\n"
               "  \"smoke\": %s,\n"
               "  \"alloc_hook\": %s,\n"
               "  \"config\": {\n"
               "    \"n_workers\": %d,\n"
               "    \"n_producers\": %d,\n"
               "    \"n_sensors\": %d,\n"
               "    \"window\": %d,\n"
               "    \"step\": %d,\n"
               "    \"rounds_per_tenant\": %d,\n"
               "    \"queue_capacity\": %d,\n"
               "    \"quantum_samples\": %d,\n"
               "    \"max_fairness_ratio\": %.2f,\n"
               "    \"max_steady_allocs_per_round\": %.1f\n"
               "  },\n"
               "  \"scales\": [\n",
               smoke ? "true" : "false",
               common::AllocHookInstalled() ? "true" : "false",
               config.n_workers, config.n_producers, config.n_sensors,
               config.window, config.step, config.rounds_per_tenant,
               config.queue_capacity, config.quantum_samples,
               config.max_fairness_ratio, config.max_steady_allocs_per_round);
  for (size_t i = 0; i < throughput.size(); ++i) {
    const ThroughputResult& tp = throughput[i];
    const FairnessResult& fr = fairness[i];
    std::fprintf(
        out,
        "    {\n"
        "      \"tenants\": %d,\n"
        "      \"rounds\": %llu,\n"
        "      \"rounds_per_sec\": %.1f,\n"
        "      \"p50_round_seconds\": %.9f,\n"
        "      \"p99_round_seconds\": %.9f,\n"
        "      \"steady_rounds\": %llu,\n"
        "      \"steady_allocs_per_round\": %.4f,\n"
        "      \"samples_accepted\": %llu,\n"
        "      \"samples_rejected\": %llu,\n"
        "      \"quanta\": %llu,\n"
        "      \"pool_workspaces_created\": %llu,\n"
        "      \"throughput_seconds\": %.6f,\n"
        "      \"fairness\": {\n"
        "        \"weight_profile\": \"weight 8 every 16th tenant, else 1\",\n"
        "        \"quanta\": %llu,\n"
        "        \"service_ratio\": %.6f,\n"
        "        \"normalized_spread\": %.2f,\n"
        "        \"raw_service_ratio\": %.6f,\n"
        "        \"raw_normalized_spread\": %.2f,\n"
        "        \"settle_quanta\": %llu,\n"
        "        \"seconds\": %.6f\n"
        "      }\n"
        "    }%s\n",
        tp.tenants, static_cast<unsigned long long>(tp.rounds),
        tp.rounds_per_sec, tp.p50_round_seconds, tp.p99_round_seconds,
        static_cast<unsigned long long>(tp.steady_rounds),
        tp.steady_allocs_per_round,
        static_cast<unsigned long long>(tp.samples_accepted),
        static_cast<unsigned long long>(tp.samples_rejected),
        static_cast<unsigned long long>(tp.quanta),
        static_cast<unsigned long long>(tp.pool_created), tp.total_seconds,
        static_cast<unsigned long long>(fr.quanta), fr.service_ratio,
        fr.normalized_spread, fr.raw_service_ratio,
        fr.raw_normalized_spread,
        static_cast<unsigned long long>(fr.settle_quanta), fr.total_seconds,
        i + 1 < throughput.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  if (!metrics_out_path.empty()) {
    std::FILE* prom = std::fopen(metrics_out_path.c_str(), "w");
    if (prom == nullptr) {
      std::fprintf(stderr, "[fleet_bench] cannot write %s\n",
                   metrics_out_path.c_str());
      return 1;
    }
    std::fwrite(metrics_text.data(), 1, metrics_text.size(), prom);
    std::fclose(prom);
  }
  std::fprintf(stderr, "[fleet_bench] wrote %s%s\n", out_path.c_str(),
               failed ? " (FAILED gates)" : "");
  return failed ? 1 : 0;
}

}  // namespace
}  // namespace cad

int main(int argc, char** argv) { return cad::Main(argc, argv); }
