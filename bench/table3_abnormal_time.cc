// Table III: abnormal time detection by PA and DPA on PSM, SWaT, IS-1 and
// IS-2 — F1_PA and F1_DPA per method (mean ± std over repeats for the
// stochastic methods) plus the average rank across all eight score columns.
//
// Dataset lengths default to laptop-scale fractions of the paper's (see
// EXPERIMENTS.md); pass --scale to grow them.
#include <cstdio>

#include "common/strings.h"
#include "eval/rank.h"
#include "harness/harness.h"

namespace cad::bench {
namespace {

struct DatasetSetup {
  std::string name;
  int train_length;
  int test_length;
  int n_anomalies;
};

int Main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv, /*default_repeats=*/3);
  const std::vector<DatasetSetup> setups = {
      {"PSM", 1500, 2000, 5},
      {"SWaT", 1500, 2200, 5},
      {"IS-1", 700, 1400, 4},
      {"IS-2", 700, 1400, 4},
  };
  const std::vector<std::string> methods = args.MethodRoster();

  std::printf("Table III: abnormal time detection by PA and DPA\n");
  std::printf("(repeats=%d, scale=%.2f)\n\n", args.repeats, args.scale);

  // columns[i] holds every method's score in one (dataset, metric) column
  // for the average-rank computation.
  std::vector<std::vector<double>> rank_columns(setups.size() * 2);
  std::vector<std::vector<std::string>> cells(methods.size());

  for (size_t d = 0; d < setups.size(); ++d) {
    const datasets::LabeledDataset dataset =
        MakeBenchDataset(setups[d].name, setups[d].train_length,
                         setups[d].test_length, setups[d].n_anomalies,
                         args.scale);

    const std::vector<MethodResult> results =
        EvaluateMethods(dataset, methods, args.repeats);
    for (size_t m = 0; m < results.size(); ++m) {
      const MetricSummary pa = BestF1Summary(results[m], dataset.labels,
                                             eval::Adjustment::kPointAdjust);
      const MetricSummary dpa = BestF1Summary(
          results[m], dataset.labels, eval::Adjustment::kDelayPointAdjust);
      rank_columns[2 * d].push_back(pa.mean);
      rank_columns[2 * d + 1].push_back(dpa.mean);
      if (results[m].deterministic) {
        cells[m].push_back(Percent(pa.mean));
        cells[m].push_back(Percent(dpa.mean));
      } else {
        cells[m].push_back(Percent(pa.mean) + "+-" + Percent(pa.stddev));
        cells[m].push_back(Percent(dpa.mean) + "+-" + Percent(dpa.stddev));
      }
    }
    std::fprintf(stderr, "[table3] %s done\n", dataset.name.c_str());
  }

  const std::vector<double> avg_rank = eval::AverageRanks(rank_columns);

  TablePrinter table({"Method", "PSM F1_PA", "PSM F1_DPA", "SWaT F1_PA",
                      "SWaT F1_DPA", "IS-1 F1_PA", "IS-1 F1_DPA",
                      "IS-2 F1_PA", "IS-2 F1_DPA", "Rank"});
  for (size_t m = 0; m < methods.size(); ++m) {
    std::vector<std::string> row = {methods[m]};
    row.insert(row.end(), cells[m].begin(), cells[m].end());
    row.push_back(FormatDouble(avg_rank[m], 1));
    table.AddRow(std::move(row));
  }
  table.Print();
  args.WriteTelemetryIfRequested();
  return 0;
}

}  // namespace
}  // namespace cad::bench

int main(int argc, char** argv) { return cad::bench::Main(argc, argv); }
