// Engine throughput bench: runs the same synthetic stream through both
// detection drivers — CadDetector::Detect (batch) and StreamingCad
// (per-sample Push) — and emits BENCH_engine.json so the perf trajectory of
// future PRs is machine-readable:
//
//   rounds/sec, p50/p95/p99 round latency, steady-state heap allocations
//   per round for each driver.
//
// Allocations are measured two ways: the binary links cad_alloc_hook (a
// global operator-new replacement counting into a thread-local), giving an
// end-to-end allocs-per-round figure that includes driver overhead, and the
// `cad_round_allocs` gauge, which the engine sets from inside the round and
// therefore isolates the hot path (-1 while the gauge is not registered).
//
// The streaming driver is additionally run with the flight recorder
// disabled, so BENCH_engine.json carries the recording overhead
// (flight_recorder.overhead_pct; contract: < 5% rounds/sec and zero
// steady-state allocs/round with the recorder on).
//
// Flags:
//   --smoke             small configuration for ctest (a few seconds)
//   --out PATH          output path (default BENCH_engine.json)
//   --flight-out PATH   also dump the streaming run's flight log as JSONL
//   --lint-bin PATH     also time a tree-wide cad_lint run (src bench
//                       examples tools, so invoke from the repo root) and
//                       record the wall time in the static_analysis block
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/alloc_tracker.h"
#include "common/mutex.h"
#include "common/realtime.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/cad_detector.h"
#include "core/engine.h"
#include "core/streaming.h"
#include "datasets/generator.h"
#include "obs/metrics.h"
#include "ts/multivariate_series.h"
#include "ts/window.h"

namespace cad::bench {
namespace {

struct EngineBenchConfig {
  int n_sensors = 48;
  int n_communities = 4;
  int train_length = 1200;
  int rounds = 1500;
  int window = 120;
  int step = 4;
  int k = 5;
  // Rounds skipped before allocation accounting starts: the first rounds pay
  // one-time capacity growth that steady state never repeats.
  int alloc_warmup_rounds = 16;

  int test_length() const { return window + (rounds - 1) * step; }
};

core::CadOptions MakeOptions(const EngineBenchConfig& config,
                             obs::Registry* registry, int flight_capacity) {
  core::CadOptions options;
  options.window = config.window;
  options.step = config.step;
  options.k = config.k;
  options.tau = 0.55;
  options.theta = 0.9;
  options.metrics_registry = registry;
  options.flight_log_capacity = flight_capacity;
  return options;
}

// The product default ring size (cad_options.h); the "recorder on" runs use
// it so the bench measures what users actually pay.
const int kDefaultFlightCapacity = core::CadOptions{}.flight_log_capacity;

// Exact empirical quantile (nearest-rank with interpolation), matching
// core::SummarizeRoundLatencies so the two drivers' tails are comparable.
double SampleQuantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

struct DriverResult {
  int rounds = 0;
  double rounds_per_sec = 0.0;
  double p50_round_seconds = 0.0;
  double p95_round_seconds = 0.0;
  double p99_round_seconds = 0.0;
  // Heap allocations per steady-state round with the hook window scoped to
  // the round loop only (operator-new hook; excludes warm-up rounds and
  // anomaly open/close transitions). 0 by contract; -1 without the hook.
  double allocs_per_round = -1.0;
  // Batch only: allocations of the whole Detect() call amortized over the
  // rounds — warm-up, per-round latency/trace collection, report assembly
  // and telemetry snapshot included. This is *harness-side* cost, which is
  // why it is nonzero while allocs_per_round and the gauge are 0; kept as
  // its own field so the two windows can never be conflated again.
  double detect_call_allocs_per_round = -1.0;
  // Last value of the engine's cad_round_allocs gauge; -1 if unregistered.
  double round_allocs_gauge = -1.0;
  double total_seconds = 0.0;
};

void FillLatency(DriverResult* result, std::vector<double> seconds) {
  result->rounds = static_cast<int>(seconds.size());
  double sum = 0.0;
  for (double s : seconds) sum += s;
  if (sum > 0.0) {
    result->rounds_per_sec = static_cast<double>(seconds.size()) / sum;
  }
  std::sort(seconds.begin(), seconds.end());
  result->p50_round_seconds = SampleQuantile(seconds, 0.50);
  result->p95_round_seconds = SampleQuantile(seconds, 0.95);
  result->p99_round_seconds = SampleQuantile(seconds, 0.99);
}

double GaugeValue(const obs::Snapshot& snapshot, const char* name) {
  const obs::GaugeSample* sample = snapshot.FindGauge(name);
  return sample != nullptr ? sample->value : -1.0;
}

// Steady-state allocations per round with the hook window bracketing only
// the engine's round loop: a bare DetectionEngine is warmed up and stepped
// over the same plan the batch driver uses, so everything CadDetector adds
// around the rounds (latency vectors, traces, report assembly) stays outside
// the measurement. Warm-up rounds and anomaly open/close transitions are
// excluded — those allocate by design (capacity growth, anomaly records).
double ScopedEngineAllocsPerRound(const EngineBenchConfig& config,
                                  const ts::MultivariateSeries& train,
                                  const ts::MultivariateSeries& test) {
  if (!common::AllocHookInstalled()) return -1.0;
  obs::Registry registry;
  core::DetectionEngine engine(
      test.n_sensors(), MakeOptions(config, &registry, kDefaultFlightCapacity));
  if (!engine.WarmUp(train).ok()) {
    std::fprintf(stderr, "engine_bench: engine warm-up failed\n");
    std::exit(1);
  }
  const ts::WindowPlan plan =
      ts::WindowPlan::Make(test.length(), config.window, config.step)
          .ValueOrDie();
  int64_t steady_allocs = 0;
  int steady_rounds = 0;
  bool prev_abnormal = false;
  for (int r = 0; r < plan.rounds(); ++r) {
    const int64_t allocs_before = common::ThreadAllocCount();
    const core::EngineRound round =
        engine.Step(test, plan.start(r), plan.start(r), plan.end(r));
    const int64_t allocs_after = common::ThreadAllocCount();
    const bool transition = round.abnormal || prev_abnormal;
    prev_abnormal = round.abnormal;
    if (r >= config.alloc_warmup_rounds && !transition) {
      steady_allocs += allocs_after - allocs_before;
      ++steady_rounds;
    }
  }
  if (steady_rounds == 0) return -1.0;
  return static_cast<double>(steady_allocs) /
         static_cast<double>(steady_rounds);
}

DriverResult RunBatch(const EngineBenchConfig& config,
                      const ts::MultivariateSeries& train,
                      const ts::MultivariateSeries& test) {
  obs::Registry registry;
  core::CadDetector detector(
      MakeOptions(config, &registry, kDefaultFlightCapacity));

  Stopwatch watch;
  const int64_t allocs_before = common::ThreadAllocCount();
  const core::DetectionReport report =
      detector.Detect(test, &train).ValueOrDie();
  const int64_t allocs_after = common::ThreadAllocCount();

  DriverResult result;
  result.total_seconds = watch.ElapsedSeconds();
  result.rounds = static_cast<int>(report.rounds.size());
  if (report.round_latency.mean > 0.0) {
    result.rounds_per_sec = 1.0 / report.round_latency.mean;
  }
  result.p50_round_seconds = report.round_latency.p50;
  result.p95_round_seconds = report.round_latency.p95;
  result.p99_round_seconds = report.round_latency.p99;
  // Whole-call figure: warmup + all rounds + report assembly amortized over
  // the rounds. Harness-side by definition — compare it against the scoped
  // figure below to see what the driver (not the hot path) costs.
  if (common::AllocHookInstalled() && result.rounds > 0) {
    result.detect_call_allocs_per_round =
        static_cast<double>(allocs_after - allocs_before) /
        static_cast<double>(result.rounds);
  }
  result.allocs_per_round = ScopedEngineAllocsPerRound(config, train, test);
  result.round_allocs_gauge = GaugeValue(report.telemetry, "cad_round_allocs");
  return result;
}

DriverResult RunStreaming(const EngineBenchConfig& config,
                          const ts::MultivariateSeries& train,
                          const ts::MultivariateSeries& test,
                          int flight_capacity,
                          const std::string& flight_out) {
  obs::Registry registry;
  core::StreamingCad streaming(
      test.n_sensors(), MakeOptions(config, &registry, flight_capacity));
  if (!streaming.WarmUp(train).ok()) {
    std::fprintf(stderr, "engine_bench: streaming warm-up failed\n");
    std::exit(1);
  }

  std::vector<double> sample(test.n_sensors());
  std::vector<double> round_seconds;
  round_seconds.reserve(config.rounds);
  int64_t steady_allocs = 0;
  int steady_rounds = 0;
  // Reused across rounds: the event's vectors keep their capacity, so a
  // steady-state Push is allocation-free end to end. (The old
  // optional-returning overload built fresh vectors inside the measured
  // window — harness-side allocations that showed up as ~14 allocs/round
  // while the engine's own gauge was 0.)
  core::StreamEvent event;
  bool prev_abnormal = false;

  Stopwatch watch;
  for (int t = 0; t < test.length(); ++t) {
    for (int i = 0; i < test.n_sensors(); ++i) sample[i] = test.value(i, t);
    const int64_t allocs_before = common::ThreadAllocCount();
    const bool completed = streaming.Push(sample, &event).ValueOrDie();
    const int64_t allocs_after = common::ThreadAllocCount();
    if (!completed) continue;
    round_seconds.push_back(event.round_seconds);
    // The measured Push delta covers ring-buffer upkeep, the round, and
    // filling the reused event — the whole per-round streaming cost. Anomaly
    // open/close transitions are excluded like in the scoped batch loop.
    const bool transition = event.abnormal || prev_abnormal;
    prev_abnormal = event.abnormal;
    if (static_cast<int>(round_seconds.size()) > config.alloc_warmup_rounds &&
        !transition) {
      steady_allocs += allocs_after - allocs_before;
      ++steady_rounds;
    }
  }

  DriverResult result;
  result.total_seconds = watch.ElapsedSeconds();
  FillLatency(&result, std::move(round_seconds));
  if (common::AllocHookInstalled() && steady_rounds > 0) {
    result.allocs_per_round = static_cast<double>(steady_allocs) /
                              static_cast<double>(steady_rounds);
  }
  result.round_allocs_gauge =
      GaugeValue(registry.TakeSnapshot(), "cad_round_allocs");

  if (!flight_out.empty()) {
    std::FILE* file = std::fopen(flight_out.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "engine_bench: cannot open %s\n",
                   flight_out.c_str());
      std::exit(1);
    }
    const std::string jsonl = streaming.DumpFlightLogJsonl();
    std::fwrite(jsonl.data(), 1, jsonl.size(), file);
    std::fclose(file);
    std::fprintf(stderr, "[engine_bench] wrote flight log %s\n",
                 flight_out.c_str());
  }
  return result;
}

void PrintDriverJson(std::FILE* out, const char* name,
                     const DriverResult& result, bool trailing_comma) {
  std::fprintf(out,
               "  \"%s\": {\n"
               "    \"rounds\": %d,\n"
               "    \"rounds_per_sec\": %.3f,\n"
               "    \"p50_round_seconds\": %.9f,\n"
               "    \"p95_round_seconds\": %.9f,\n"
               "    \"p99_round_seconds\": %.9f,\n"
               "    \"allocs_per_round\": %.3f,\n"
               "    \"detect_call_allocs_per_round\": %.3f,\n"
               "    \"round_allocs_gauge\": %.1f,\n"
               "    \"total_seconds\": %.6f\n"
               "  }%s\n",
               name, result.rounds, result.rounds_per_sec,
               result.p50_round_seconds, result.p95_round_seconds,
               result.p99_round_seconds, result.allocs_per_round,
               result.detect_call_allocs_per_round, result.round_allocs_gauge,
               result.total_seconds, trailing_comma ? "," : "");
}

int Main(int argc, char** argv) {
  cad::common::LinkAllocHook();

  bool smoke = false;
  std::string out_path = "BENCH_engine.json";
  std::string flight_out;
  std::string lint_bin;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--flight-out") == 0 && i + 1 < argc) {
      flight_out = argv[++i];
    } else if (std::strcmp(argv[i], "--lint-bin") == 0 && i + 1 < argc) {
      lint_bin = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: engine_bench [--smoke] [--out PATH] "
                   "[--flight-out PATH] [--lint-bin PATH]\n");
      return 2;
    }
  }

  EngineBenchConfig config;
  if (smoke) {
    config.n_sensors = 16;
    config.n_communities = 3;
    config.train_length = 400;
    config.rounds = 80;
    config.window = 80;
    config.k = 3;
    config.alloc_warmup_rounds = 8;
  }

  Rng rng(2026);
  datasets::GeneratorOptions gen_options;
  gen_options.n_sensors = config.n_sensors;
  gen_options.n_communities = config.n_communities;
  datasets::SensorNetworkGenerator generator(gen_options, &rng);
  const ts::MultivariateSeries train =
      generator.Generate(config.train_length, &rng);
  const ts::MultivariateSeries test =
      generator.Generate(config.test_length(), &rng);

  std::fprintf(stderr, "[engine_bench] %d sensors, window %d, step %d, %d rounds%s\n",
               config.n_sensors, config.window, config.step, config.rounds,
               smoke ? " (smoke)" : "");

  const DriverResult batch = RunBatch(config, train, test);
  std::fprintf(stderr, "[engine_bench] batch:  %.0f rounds/sec, %.2f allocs/round\n",
               batch.rounds_per_sec, batch.allocs_per_round);

  // Flight-recorder overhead protocol: one discarded warm-up pass (the first
  // run pays cold caches and page faults that neither config should own),
  // then three repetitions of each config, interleaved in alternating order
  // so machine drift penalizes neither side, keeping each config's best
  // repetition. Measuring the two configs back to back in a fixed order used
  // to report a *negative* overhead: the second config inherited a warm
  // machine.
  (void)RunStreaming(config, train, test, kDefaultFlightCapacity, "");
  DriverResult stream;      // recorder on (ring capacity = product default)
  DriverResult stream_off;  // recorder off (ring capacity = 0)
  constexpr int kRecorderReps = 3;
  for (int rep = 0; rep < kRecorderReps; ++rep) {
    DriverResult on_rep;
    DriverResult off_rep;
    if (rep % 2 == 0) {
      on_rep = RunStreaming(config, train, test, kDefaultFlightCapacity,
                            rep == 0 ? flight_out : "");
      off_rep = RunStreaming(config, train, test, /*flight_capacity=*/0, "");
    } else {
      off_rep = RunStreaming(config, train, test, /*flight_capacity=*/0, "");
      on_rep = RunStreaming(config, train, test, kDefaultFlightCapacity, "");
    }
    if (on_rep.rounds_per_sec > stream.rounds_per_sec) stream = on_rep;
    if (off_rep.rounds_per_sec > stream_off.rounds_per_sec) {
      stream_off = off_rep;
    }
  }
  std::fprintf(stderr, "[engine_bench] stream: %.0f rounds/sec, %.2f allocs/round\n",
               stream.rounds_per_sec, stream.allocs_per_round);
  const double overhead_pct =
      stream_off.rounds_per_sec > 0.0
          ? (1.0 - stream.rounds_per_sec / stream_off.rounds_per_sec) * 100.0
          : 0.0;
  std::fprintf(stderr,
               "[engine_bench] flight recorder: %.0f -> %.0f rounds/sec "
               "(%.2f%% overhead, best of %d interleaved)\n",
               stream_off.rounds_per_sec, stream.rounds_per_sec, overhead_pct,
               kRecorderReps);

  // Regression gate for the zero-allocation contract: with the hook linked,
  // the *scoped* round-loop windows must stay far below one allocation per
  // steady round. The bound is not exactly zero because generator data keeps
  // discovering co-appearance keys past any fixed warm-up prefix (sparse
  // capacity high-water growth, mirrored by the cad_round_allocs gauge and
  // measured at ~0.15/round); the exact-zero proof on saturated data lives in
  // engine_alloc_test. What this gate catches is harness-window leaks like
  // the event-vector copies that once inflated the figure to ~14/round.
  // (The whole-call detect_call_allocs_per_round figure is expected to be
  // nonzero — that is harness cost, reported separately.)
  constexpr double kMaxSteadyAllocsPerRound = 1.0;
  if (common::AllocHookInstalled() &&
      (batch.allocs_per_round > kMaxSteadyAllocsPerRound ||
       stream.allocs_per_round > kMaxSteadyAllocsPerRound)) {
    std::fprintf(stderr,
                 "[engine_bench] FAIL: steady-state round-loop allocations "
                 "(batch %.3f/round, stream %.3f/round; gate is %.1f)\n",
                 batch.allocs_per_round, stream.allocs_per_round,
                 kMaxSteadyAllocsPerRound);
    return 1;
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "engine_bench: cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"engine\",\n"
               "  \"smoke\": %s,\n"
               "  \"config\": {\n"
               "    \"n_sensors\": %d,\n"
               "    \"n_communities\": %d,\n"
               "    \"train_length\": %d,\n"
               "    \"test_length\": %d,\n"
               "    \"window\": %d,\n"
               "    \"step\": %d,\n"
               "    \"k\": %d\n"
               "  },\n",
               smoke ? "true" : "false", config.n_sensors, config.n_communities,
               config.train_length, config.test_length(), config.window,
               config.step, config.k);
  PrintDriverJson(out, "batch", batch, /*trailing_comma=*/true);
  PrintDriverJson(out, "stream", stream, /*trailing_comma=*/true);
  std::fprintf(out,
               "  \"flight_recorder\": {\n"
               "    \"capacity\": %d,\n"
               "    \"protocol\": \"interleaved best-of-%d per config after "
               "one discarded warm-up run\",\n"
               "    \"recorder_off_rounds_per_sec\": %.3f,\n"
               "    \"recorder_on_rounds_per_sec\": %.3f,\n"
               "    \"overhead_pct\": %.3f,\n"
               "    \"overhead_pct_definition\": \"(1 - recorder_on_rounds_per_sec"
               " / recorder_off_rounds_per_sec) * 100\",\n"
               "    \"recorder_on_allocs_per_round\": %.3f,\n"
               "    \"recorder_on_round_allocs_gauge\": %.1f\n"
               "  },\n",
               kDefaultFlightCapacity, kRecorderReps, stream_off.rounds_per_sec,
               stream.rounds_per_sec, overhead_pct, stream.allocs_per_round,
               stream.round_allocs_gauge);
  // Perf contract for the realtime annotations (src/common/realtime.h):
  // the CAD_REALTIME family must cost nothing. Under GCC the macros are
  // textual no-ops (attributes_active = false); under Clang 20+ the
  // [[clang::nonblocking]] attributes affect diagnostics only, never
  // codegen. Either way the batch/stream throughput above IS the annotated
  // build's throughput — this block records it alongside the flag so a
  // run on any toolchain documents which regime it measured.
  std::fprintf(out,
               "  \"realtime_annotations\": {\n"
               "    \"attributes_active\": %s,\n"
               "    \"enforcement\": \"%s\",\n"
               "    \"batch_rounds_per_sec\": %.3f,\n"
               "    \"stream_rounds_per_sec\": %.3f,\n"
               "    \"stream_round_allocs_gauge\": %.1f\n"
               "  },\n",
               CAD_REALTIME_ATTRIBUTES_ENABLED ? "true" : "false",
               CAD_REALTIME_ATTRIBUTES_ENABLED
                   ? "clang function-effects + cad_lint CL007/CL008"
                   : "cad_lint CL007/CL008 (attributes compiled out)",
               batch.rounds_per_sec, stream.rounds_per_sec,
               stream.round_allocs_gauge);
  // Same pattern for the deadlock contract (common/mutex.h): below
  // CAD_CHECK_LEVEL=full the lock-order tracker is compiled out and
  // Mutex::lock *is* std::mutex::lock, so the release-build throughput
  // above is by construction the tracker-free number. The block records
  // which regime this run measured so a tracker-armed (`deadlock` preset)
  // run is never mistaken for the perf baseline.
  std::fprintf(out,
               "  \"lock_tracker\": {\n"
               "    \"tracker_active\": %s,\n"
               "    \"enforcement\": \"%s\",\n"
               "    \"stream_rounds_per_sec\": %.3f,\n"
               "    \"stream_round_allocs_gauge\": %.1f\n"
               "  },\n",
               common::LockOrderTrackerActive() ? "true" : "false",
               common::LockOrderTrackerActive()
                   ? "runtime acquired-after graph + cad_lint CL009-CL011"
                   : "cad_lint CL009-CL011 (tracker compiled out)",
               stream.rounds_per_sec, stream.round_allocs_gauge);
  // Static analysis is part of the perf story too: the tree-wide cad_lint
  // pass gates every ctest run, so its wall time is a cost every
  // contributor pays. Measured only when --lint-bin is given (the smoke
  // test has no stable path to the binary).
  if (!lint_bin.empty()) {
    const std::string command =
        lint_bin + " src bench examples tools > /dev/null 2>&1";
    const auto lint_start = std::chrono::steady_clock::now();
    const int lint_status = std::system(command.c_str());
    const double lint_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      lint_start)
            .count();
    std::fprintf(stderr,
                 "[engine_bench] cad_lint tree pass: %.3f s (%s)\n",
                 lint_seconds, lint_status == 0 ? "clean" : "FINDINGS");
    std::fprintf(out,
                 "  \"static_analysis\": {\n"
                 "    \"cad_lint_tree_wall_seconds\": %.3f,\n"
                 "    \"cad_lint_clean\": %s\n"
                 "  }\n",
                 lint_seconds, lint_status == 0 ? "true" : "false");
  } else {
    std::fprintf(out,
                 "  \"static_analysis\": {\n"
                 "    \"cad_lint_tree_wall_seconds\": null,\n"
                 "    \"cad_lint_clean\": null\n"
                 "  }\n");
  }
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::fprintf(stderr, "[engine_bench] wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace cad::bench

int main(int argc, char** argv) { return cad::bench::Main(argc, argv); }
