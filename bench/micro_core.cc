// Micro benchmarks (google-benchmark) for CAD's per-round building blocks:
// window correlation matrix, TSG construction, Louvain, and a complete
// OutlierDetection round — the costs behind Table VII's TPR and the O(n log n)
// claim of Section IV-F.
//
// Accepts --telemetry-out <path> in addition to the google-benchmark flags:
// the run then records spans (tracer enabled) and dumps the metrics registry
// + trace next to the benchmark output (see DESIGN.md "Observability").
#include <benchmark/benchmark.h>

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/round_processor.h"
#include "datasets/generator.h"
#include "graph/knn_graph.h"
#include "graph/louvain.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "stats/correlation.h"

namespace cad {
namespace {

ts::MultivariateSeries MakeSeries(int n_sensors, int length) {
  Rng rng(42);
  datasets::GeneratorOptions options;
  options.n_sensors = n_sensors;
  options.n_communities = std::max(2, n_sensors / 12);
  datasets::SensorNetworkGenerator generator(options, &rng);
  return generator.Generate(length, &rng);
}

constexpr int kWindow = 64;

void BM_WindowCorrelationMatrix(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const ts::MultivariateSeries series = MakeSeries(n, kWindow * 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::WindowCorrelationMatrix(series, 0, kWindow));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_WindowCorrelationMatrix)->Arg(26)->Arg(128)->Arg(512)->Complexity();

void BM_BuildKnnGraph(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const ts::MultivariateSeries series = MakeSeries(n, kWindow * 2);
  const stats::CorrelationMatrix corr =
      stats::WindowCorrelationMatrix(series, 0, kWindow);
  const graph::KnnGraphOptions options{.k = 10, .tau = 0.5};
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::BuildKnnGraph(corr, options));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_BuildKnnGraph)->Arg(26)->Arg(128)->Arg(512)->Complexity();

void BM_Louvain(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const ts::MultivariateSeries series = MakeSeries(n, kWindow * 2);
  const stats::CorrelationMatrix corr =
      stats::WindowCorrelationMatrix(series, 0, kWindow);
  const graph::Graph tsg =
      graph::BuildKnnGraph(corr, {.k = 10, .tau = 0.5});
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::Louvain(tsg));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_Louvain)->Arg(26)->Arg(128)->Arg(512)->Complexity();

void BM_OutlierDetectionRound(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const ts::MultivariateSeries series = MakeSeries(n, 4096 + kWindow);
  core::CadOptions options;
  options.window = kWindow;
  options.step = 4;
  options.k = 10;
  options.tau = 0.5;
  core::RoundProcessor processor(n, options);
  int start = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(processor.ProcessWindow(series, start));
    start = (start + options.step) % 4096;
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_OutlierDetectionRound)->Arg(26)->Arg(128)->Arg(512)->Complexity();

void BM_OutlierDetectionRoundIncremental(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const ts::MultivariateSeries series = MakeSeries(n, 4096 + kWindow);
  core::CadOptions options;
  options.window = kWindow;
  options.step = 4;
  options.k = 10;
  options.tau = 0.5;
  options.incremental_correlation = true;  // O(n^2 s) instead of O(n^2 w)
  core::RoundProcessor processor(n, options);
  int start = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(processor.ProcessWindow(series, start));
    start += options.step;
    if (start + kWindow > 4096) {
      start = 0;  // the tracker resets itself on the wraparound
    }
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_OutlierDetectionRoundIncremental)
    ->Arg(26)
    ->Arg(128)
    ->Arg(512)
    ->Complexity();

void BM_WindowCorrelationMatrixThreaded(benchmark::State& state) {
  const int n = 512;
  const int threads = static_cast<int>(state.range(0));
  const ts::MultivariateSeries series = MakeSeries(n, kWindow * 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::WindowCorrelationMatrix(
        series, 0, kWindow, stats::CorrelationKind::kPearson, threads));
  }
}
BENCHMARK(BM_WindowCorrelationMatrixThreaded)->Arg(1)->Arg(2)->Arg(4);

}  // namespace
}  // namespace cad

// Custom main instead of BENCHMARK_MAIN(): strips --telemetry-out before
// google-benchmark sees argv (it rejects unknown flags), enables the global
// tracer for the run, and writes the telemetry files at exit.
int main(int argc, char** argv) {
  std::string telemetry_out;
  std::vector<char*> kept;
  kept.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--telemetry-out") == 0 && i + 1 < argc) {
      telemetry_out = argv[++i];
    } else if (std::strncmp(argv[i], "--telemetry-out=", 16) == 0) {
      telemetry_out = argv[i] + 16;
    } else {
      kept.push_back(argv[i]);
    }
  }
  int kept_argc = static_cast<int>(kept.size());
  if (!telemetry_out.empty()) cad::obs::Tracer::Global().Enable();

  benchmark::Initialize(&kept_argc, kept.data());
  if (benchmark::ReportUnrecognizedArguments(kept_argc, kept.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  if (!telemetry_out.empty()) {
    const cad::Status status = cad::obs::WriteTelemetry(
        telemetry_out, cad::obs::Registry::Global().TakeSnapshot(),
        cad::obs::Tracer::Global());
    if (!status.ok()) {
      std::cerr << "telemetry write failed: " << status.ToString() << "\n";
      return 1;
    }
    std::cerr << "telemetry written to " << telemetry_out
              << " (+ .trace.jsonl, .prom)\n";
  }
  return 0;
}
