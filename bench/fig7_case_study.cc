// Figure 7: case study on one SMD subset (the paper uses SMD 1_6; here the
// analogous synthetic subset 6). Shows, for one labelled anomaly:
//  - which sensors the ground truth marks abnormal vs what CAD attributes,
//  - every method's first detection index and its delay after onset,
//  - an ASCII rendering of an affected and an unaffected sensor around the
//    anomaly window, mirroring the paper's sensor traces.
#include <algorithm>
#include <cstdio>

#include "baselines/cad_adapter.h"
#include "common/strings.h"
#include "eval/ahead_miss.h"
#include "harness/harness.h"

namespace cad::bench {
namespace {

// Renders a series stretch as a row of height glyphs.
std::string Sparkline(std::span<const double> x, int begin, int end, int step) {
  static const char* kGlyphs[] = {"_", ".", "-", "=", "*", "#"};
  double lo = x[begin], hi = x[begin];
  for (int t = begin; t < end; ++t) {
    lo = std::min(lo, x[t]);
    hi = std::max(hi, x[t]);
  }
  std::string line;
  for (int t = begin; t < end; t += step) {
    const double norm = hi > lo ? (x[t] - lo) / (hi - lo) : 0.5;
    line += kGlyphs[std::min(5, static_cast<int>(norm * 6.0))];
  }
  return line;
}

int Main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv, /*default_repeats=*/1);

  const datasets::LabeledDataset dataset =
      MakeBenchDataset("SMD-6", 800, 1100, 3, args.scale);

  // Pick the longest ground-truth anomaly as the study subject.
  const eval::SensorGroundTruth* subject = &dataset.anomalies[0];
  for (const eval::SensorGroundTruth& anomaly : dataset.anomalies) {
    if (anomaly.segment.end - anomaly.segment.begin >
        subject->segment.end - subject->segment.begin) {
      subject = &anomaly;
    }
  }

  std::printf("Figure 7: case study on %s\n\n", dataset.name.c_str());
  std::printf("Anomaly at [%d, %d); ground-truth abnormal sensors:",
              subject->segment.begin, subject->segment.end);
  for (int v : subject->sensors) std::printf(" s%d", v + 1);
  std::printf("\n\n");

  // Sensor traces around the anomaly.
  const int margin = (subject->segment.end - subject->segment.begin) / 2;
  const int begin = std::max(0, subject->segment.begin - margin);
  const int end =
      std::min(dataset.test.length(), subject->segment.end + margin);
  const int step = std::max(1, (end - begin) / 72);
  const int affected = subject->sensors.front();
  int unaffected = 0;
  while (std::find(subject->sensors.begin(), subject->sensors.end(),
                   unaffected) != subject->sensors.end()) {
    ++unaffected;
  }
  std::printf("abnormal  s%-3d |%s|\n", affected + 1,
              Sparkline(dataset.test.sensor(affected), begin, end, step).c_str());
  std::printf("normal    s%-3d |%s|\n", unaffected + 1,
              Sparkline(dataset.test.sensor(unaffected), begin, end, step).c_str());
  {
    std::string marks;
    for (int t = begin; t < end; t += step) {
      marks += (t >= subject->segment.begin && t < subject->segment.end) ? "^"
                                                                         : " ";
    }
    std::printf("anomaly span   |%s|\n\n", marks.c_str());
  }

  // Per-method first detection of this anomaly; CAD runs without warm-up
  // (SMD protocol).
  const std::vector<MethodResult> results =
      EvaluateMethods(dataset, args.MethodRoster(), args.repeats, 61,
                      /*cad_warmup=*/false);
  TablePrinter table({"Method", "First detection", "Delay (points)"});
  for (const MethodResult& result : results) {
    const eval::Labels pred =
        BinarizeAtBestThreshold(result.runs[0].scores, dataset.labels,
                                eval::Adjustment::kDelayPointAdjust);
    const int first = eval::FirstDetection(pred, subject->segment);
    if (first < 0) {
      table.AddRow({result.name, "missed", "-"});
    } else {
      table.AddRow({result.name, std::to_string(first),
                    std::to_string(first - subject->segment.begin)});
    }
  }
  table.Print();

  // CAD's sensor attribution for this anomaly.
  for (const MethodResult& result : results) {
    if (result.name != "CAD") continue;
    std::printf("\nCAD sensor attribution overlapping the anomaly:");
    std::vector<int> merged;
    for (const eval::SensorPrediction& prediction :
         result.runs[0].sensor_predictions) {
      if (prediction.segment.begin < subject->segment.end &&
          prediction.segment.end > subject->segment.begin) {
        merged.insert(merged.end(), prediction.sensors.begin(),
                      prediction.sensors.end());
      }
    }
    std::sort(merged.begin(), merged.end());
    merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
    for (int v : merged) std::printf(" s%d", v + 1);
    std::printf("\n");
  }
  args.WriteTelemetryIfRequested();
  return 0;
}

}  // namespace
}  // namespace cad::bench

int main(int argc, char** argv) { return cad::bench::Main(argc, argv); }
