#include "harness/harness.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "baselines/cad_adapter.h"
#include "check/check.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace cad::bench {

BenchArgs BenchArgs::Parse(int argc, char** argv, int default_repeats) {
  BenchArgs args;
  args.repeats = default_repeats;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << flag << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--repeats") {
      args.repeats = std::atoi(next());
    } else if (flag == "--scale") {
      args.scale = std::atof(next());
    } else if (flag == "--methods") {
      args.methods = Split(next(), ',');
    } else if (flag == "--telemetry-out") {
      args.telemetry_out = next();
    } else if (flag == "--help") {
      std::cout << "flags: --repeats N  --scale X  --methods a,b,c  "
                   "--telemetry-out path\n";
      std::exit(0);
    } else {
      std::cerr << "unknown flag " << flag << " (try --help)\n";
      std::exit(2);
    }
  }
  if (args.repeats < 1) args.repeats = 1;
  if (args.scale <= 0.0) args.scale = 1.0;
  if (!args.telemetry_out.empty()) obs::Tracer::Global().Enable();
  return args;
}

void BenchArgs::WriteTelemetryIfRequested() const {
  if (telemetry_out.empty()) return;
  const Status status = obs::WriteTelemetry(
      telemetry_out, obs::Registry::Global().TakeSnapshot(),
      obs::Tracer::Global());
  if (!status.ok()) {
    std::cerr << "telemetry write failed: " << status.ToString() << "\n";
  } else {
    std::cerr << "telemetry written to " << telemetry_out << " (+ .trace.jsonl, .prom)\n";
  }
}

datasets::DatasetProfile Scaled(datasets::DatasetProfile profile,
                                double scale) {
  profile.train_length = static_cast<int>(profile.train_length * scale);
  profile.test_length = static_cast<int>(profile.test_length * scale);
  return profile;
}

datasets::LabeledDataset MakeBenchDataset(const std::string& name,
                                          int train_length, int test_length,
                                          int n_anomalies, double scale) {
  datasets::DatasetProfile profile;
  if (name.rfind("SMD-", 0) == 0) {
    profile = datasets::SmdSubsetProfile(std::atoi(name.c_str() + 4));
  } else {
    profile = datasets::ProfileByName(name).ValueOrDie();
  }
  profile.train_length = static_cast<int>(train_length * scale);
  profile.test_length = static_cast<int>(test_length * scale);
  profile.n_anomalies = n_anomalies;
  return datasets::MakeDataset(profile);
}

std::vector<MethodResult> EvaluateMethods(
    const datasets::LabeledDataset& dataset,
    const std::vector<std::string>& names, int repeats, uint64_t base_seed,
    bool cad_warmup) {
  std::vector<MethodResult> results;
  for (const std::string& name : names) {
    MethodResult result;
    result.name = name;
    {
      auto probe = baselines::MakeMethod(name, dataset.recommended, base_seed);
      result.deterministic = probe->deterministic();
    }
    const int n_runs = result.deterministic ? 1 : repeats;
    for (int run = 0; run < n_runs; ++run) {
      auto method = baselines::MakeMethod(name, dataset.recommended,
                                          base_seed + 7919ull * run);
      MethodRun record;
      {
        ScopedTimer fit_timer(&record.fit_seconds);
        const bool skip_fit = name == "CAD" && !cad_warmup;
        if (dataset.has_train() && !skip_fit) {
          const Status status = method->Fit(dataset.train);
          CAD_CHECK(status.ok(),
                    name + " Fit failed: " + status.ToString());
        }
      }

      Result<std::vector<double>> scores =
          Status::FailedPrecondition("not scored");
      {
        ScopedTimer score_timer(&record.score_seconds);
        scores = method->Score(dataset.test);
      }
      CAD_CHECK(scores.ok(), name + " Score failed: " + scores.status().ToString());
      record.scores = std::move(scores).value();

      if (auto* cad = dynamic_cast<baselines::CadAdapter*>(method.get())) {
        const core::DetectionReport& report = *cad->last_report();
        record.seconds_per_round = report.seconds_per_round;
        record.round_latency = report.round_latency;
        for (const core::Anomaly& anomaly : report.anomalies) {
          record.sensor_predictions.push_back(
              {{anomaly.start_time, anomaly.end_time}, anomaly.sensors});
        }
        // For CAD the paper reports warm-up as "training" time.
        record.fit_seconds = report.warmup_seconds;
        record.score_seconds = report.detect_seconds;
      }
      result.runs.push_back(std::move(record));
    }
    results.push_back(std::move(result));
  }
  return results;
}

MetricSummary Summarize(const std::vector<double>& values) {
  MetricSummary summary;
  if (values.empty()) return summary;
  double sum = 0.0;
  summary.min = values[0];
  for (double v : values) {
    sum += v;
    if (v < summary.min) summary.min = v;
  }
  summary.mean = sum / static_cast<double>(values.size());
  double var = 0.0;
  for (double v : values) var += (v - summary.mean) * (v - summary.mean);
  summary.stddev = std::sqrt(var / static_cast<double>(values.size()));
  return summary;
}

MetricSummary BestF1Summary(const MethodResult& result,
                            const eval::Labels& truth, eval::Adjustment mode,
                            double grid_step) {
  std::vector<double> f1s;
  for (const MethodRun& run : result.runs) {
    f1s.push_back(eval::BestF1Search(run.scores, truth, mode, grid_step).f1);
  }
  return Summarize(f1s);
}

std::vector<eval::SensorPrediction> SensorPredictionsFromScores(
    const std::vector<std::vector<double>>& sensor_scores,
    const eval::Labels& binary_pred) {
  std::vector<eval::SensorPrediction> predictions;
  for (const eval::Segment& segment : eval::ExtractSegments(binary_pred)) {
    std::vector<double> means(sensor_scores.size(), 0.0);
    double best = 0.0;
    for (size_t i = 0; i < sensor_scores.size(); ++i) {
      for (int t = segment.begin; t < segment.end; ++t) {
        means[i] += sensor_scores[i][t];
      }
      means[i] /= static_cast<double>(segment.end - segment.begin);
      best = std::max(best, means[i]);
    }
    eval::SensorPrediction prediction;
    prediction.segment = segment;
    for (size_t i = 0; i < means.size(); ++i) {
      if (best > 0.0 && means[i] >= 0.5 * best) {
        prediction.sensors.push_back(static_cast<int>(i));
      }
    }
    predictions.push_back(std::move(prediction));
  }
  return predictions;
}

eval::Labels BinarizeAtBestThreshold(const std::vector<double>& scores,
                                     const eval::Labels& truth,
                                     eval::Adjustment mode, double grid_step) {
  const eval::BestF1 best = eval::BestF1Search(scores, truth, mode, grid_step);
  eval::Labels pred(scores.size(), 0);
  for (size_t t = 0; t < scores.size(); ++t) {
    pred[t] = scores[t] >= best.threshold ? 1 : 0;
  }
  return pred;
}

TablePrinter::TablePrinter(std::vector<std::string> header) {
  rows_.push_back(std::move(header));
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print() const {
  std::vector<size_t> widths;
  for (const auto& row : rows_) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  for (size_t r = 0; r < rows_.size(); ++r) {
    std::string line;
    for (size_t c = 0; c < rows_[r].size(); ++c) {
      if (c > 0) line += "  ";
      line += Pad(rows_[r][c], c == 0 ? -static_cast<int>(widths[c])
                                      : static_cast<int>(widths[c]));
    }
    std::puts(line.c_str());
    if (r == 0) {
      std::string rule;
      for (size_t c = 0; c < widths.size(); ++c) {
        if (c > 0) rule += "  ";
        rule.append(widths[c], '-');
      }
      std::puts(rule.c_str());
    }
  }
}

std::string Percent(double fraction, int precision) {
  return FormatDouble(fraction * 100.0, precision);
}

std::string Seconds(double seconds, int precision) {
  return FormatDouble(seconds, precision);
}

}  // namespace cad::bench
