// Shared machinery for the per-table/figure benchmark binaries: running the
// ten methods over a labelled dataset with repeats, computing the paper's
// metrics, and printing aligned tables.
//
// Every binary accepts:
//   --repeats N   repeats for stochastic methods (default per binary)
//   --scale X     scales dataset lengths by X (e.g. 0.5 for a smoke run)
//   --methods a,b restricts the method roster
//   --telemetry-out path   dump the metrics registry + span trace after the
//                          run (enables the global tracer; see DESIGN.md
//                          "Observability")
// so the default `for b in build/bench/*; do $b; done` sweep finishes on a
// laptop while full-fidelity runs remain one flag away.
#ifndef CAD_BENCH_HARNESS_HARNESS_H_
#define CAD_BENCH_HARNESS_HARNESS_H_

#include <optional>
#include <string>
#include <vector>

#include "baselines/method_registry.h"
#include "core/cad_detector.h"
#include "datasets/registry.h"
#include "eval/adjust.h"
#include "eval/threshold.h"

namespace cad::bench {

struct BenchArgs {
  int repeats = 3;
  double scale = 1.0;
  std::vector<std::string> methods;  // empty = all ten
  std::string telemetry_out;         // empty = no telemetry dump

  // Parses argv; exits with a usage message on unknown flags. When
  // --telemetry-out is present the global obs::Tracer is enabled so the run
  // records spans from the start.
  static BenchArgs Parse(int argc, char** argv, int default_repeats);

  std::vector<std::string> MethodRoster() const {
    return methods.empty() ? baselines::AllMethodNames() : methods;
  }

  // Writes the global registry snapshot + span trace to telemetry_out (and
  // the .trace.jsonl / .prom siblings); no-op when the flag was not given.
  // Every bench Main calls this right before returning.
  void WriteTelemetryIfRequested() const;
};

// Applies --scale to a profile's lengths (anomaly count is kept).
datasets::DatasetProfile Scaled(datasets::DatasetProfile profile, double scale);

// Builds a bench dataset: profile `name` ("PSM", "SWaT", "IS-1".. or
// "SMD-<i>") with train/test lengths and anomaly count overridden, then
// scaled by `scale`.
datasets::LabeledDataset MakeBenchDataset(const std::string& name,
                                          int train_length, int test_length,
                                          int n_anomalies, double scale);

// One run of one method on one dataset.
struct MethodRun {
  std::vector<double> scores;
  double fit_seconds = 0.0;
  double score_seconds = 0.0;
  // Populated for CAD only: per-anomaly sensor attribution + TPR.
  std::vector<eval::SensorPrediction> sensor_predictions;
  double seconds_per_round = 0.0;
  // CAD only: percentiles of the individually measured round latencies
  // (Table VII prints the p95/p99 rows from this).
  core::RoundLatencySummary round_latency;
};

struct MethodResult {
  std::string name;
  bool deterministic = false;
  std::vector<MethodRun> runs;  // 1 for deterministic methods
};

// Runs each method on the dataset; stochastic methods run `repeats` times
// with distinct seeds, deterministic ones once. `cad_warmup=false` skips the
// historical split for CAD only (the paper's SMD protocol: other methods
// still train on it).
std::vector<MethodResult> EvaluateMethods(
    const datasets::LabeledDataset& dataset,
    const std::vector<std::string>& names, int repeats, uint64_t base_seed = 1,
    bool cad_warmup = true);

// Converts per-sensor score series into per-anomaly sensor predictions: for
// every contiguous segment of `binary_pred`, the sensors whose mean score
// within the segment is at least half of the best sensor's mean. Used to
// evaluate F1_sensor for ECOD and RCoders (Table IV).
std::vector<eval::SensorPrediction> SensorPredictionsFromScores(
    const std::vector<std::vector<double>>& sensor_scores,
    const eval::Labels& binary_pred);

// Mean / std / min summary of a per-run metric.
struct MetricSummary {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
};

MetricSummary Summarize(const std::vector<double>& values);

// Best F1 per run under the adjustment, summarized across runs.
MetricSummary BestF1Summary(const MethodResult& result,
                            const eval::Labels& truth, eval::Adjustment mode,
                            double grid_step = 0.005);

// Binarizes a run's scores at its own best-F1(DPA) threshold — the paper's
// protocol before computing Ahead/Miss.
eval::Labels BinarizeAtBestThreshold(const std::vector<double>& scores,
                                     const eval::Labels& truth,
                                     eval::Adjustment mode,
                                     double grid_step = 0.005);

// ---- table printing ------------------------------------------------------

// Prints a header + rows with right-aligned columns.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);
  void AddRow(std::vector<std::string> cells);
  void Print() const;

 private:
  std::vector<std::vector<std::string>> rows_;
};

std::string Percent(double fraction, int precision = 1);  // 0.897 -> "89.7"
std::string Seconds(double seconds, int precision = 1);

}  // namespace cad::bench

#endif  // CAD_BENCH_HARNESS_HARNESS_H_
