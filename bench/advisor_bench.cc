// Advisor quality bench: closes the root-cause loop against generator ground
// truth. Plans injected anomaly incidents (datasets::PlanEvents layout,
// retyped to the correlation family: breaks and mixed break+drift), runs the
// batch detector over the injected series with a flight-recorder ring large
// enough to hold every round, then asks the advisor to triage each
// incident's sample range and checks whether a truly injected sensor appears
// in the ranking's top k.
//
// Only correlation-family incidents are planned because root-cause triage is
// only measurable on incidents the detector can see: a pure level shift is
// invariant under Pearson correlation (the paper's stated blind spot, served
// by the magnitude baselines), so it leaves no flight-log evidence and the
// advisor correctly returns an empty ranking — that is a detection gap, not
// a triage error.
//
// Emits BENCH_advisor.json with per-incident verdicts and the aggregate
// hit@1/2/3 rates. Netdata's Anomaly Advisor is considered useful when the
// culprit lands in the first screen of 30-50 metrics; with ground truth we
// gate hard at hit@3 >= 0.9 (the ISSUE 6 acceptance bar) — the bench exits
// nonzero below it, so ctest catches a ranking regression.
//
// Everything is seeded and single-threaded, so the JSON is identical across
// runs; the bench also re-runs Advise per incident and byte-compares the two
// reports to prove the determinism contract on real data.
//
// Flags:
//   --smoke       small configuration for ctest (a few seconds)
//   --out PATH    output path (default BENCH_advisor.json)
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "advisor/advisor.h"
#include "common/rng.h"
#include "core/cad_detector.h"
#include "datasets/anomaly_injector.h"
#include "datasets/generator.h"
#include "eval/root_cause.h"
#include "ts/multivariate_series.h"

namespace cad::bench {
namespace {

struct AdvisorBenchConfig {
  int n_sensors = 36;
  int n_communities = 4;
  int train_length = 900;
  int test_length = 4800;
  int n_incidents = 12;
  int min_duration = 140;
  int max_duration = 220;
  int min_gap = 160;
  int window = 96;
  int step = 4;
  int k = 5;
  // Ring capacity sized to hold every round of the run (a non-default,
  // larger-than-256 configuration — the configurable-capacity satellite in
  // action): (test_length - window) / step + 1 rounds must fit.
  int flight_capacity = 2048;
};

const char* TypeName(datasets::AnomalyType type) {
  switch (type) {
    case datasets::AnomalyType::kCorrelationBreak: return "correlation_break";
    case datasets::AnomalyType::kLevelShift: return "level_shift";
    case datasets::AnomalyType::kTrendDrift: return "trend_drift";
    case datasets::AnomalyType::kSpike: return "spike";
    case datasets::AnomalyType::kMixed: return "mixed";
  }
  return "unknown";
}

void PrintIntArray(std::FILE* out, const std::vector<int>& values) {
  std::fprintf(out, "[");
  for (size_t i = 0; i < values.size(); ++i) {
    std::fprintf(out, "%s%d", i > 0 ? ", " : "", values[i]);
  }
  std::fprintf(out, "]");
}

int Main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_advisor.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: advisor_bench [--smoke] [--out PATH]\n");
      return 2;
    }
  }

  AdvisorBenchConfig config;
  if (smoke) {
    config.n_sensors = 24;
    config.n_communities = 3;
    config.train_length = 600;
    config.test_length = 2400;
    config.n_incidents = 6;
    config.min_duration = 120;
    config.max_duration = 180;
    config.min_gap = 140;
    config.window = 80;
    config.k = 4;
    config.flight_capacity = 1024;
  }

  Rng rng(2026);
  datasets::GeneratorOptions gen_options;
  gen_options.n_sensors = config.n_sensors;
  gen_options.n_communities = config.n_communities;
  datasets::SensorNetworkGenerator generator(gen_options, &rng);
  const ts::MultivariateSeries train =
      generator.Generate(config.train_length, &rng);
  ts::MultivariateSeries test = generator.Generate(config.test_length, &rng);

  std::vector<datasets::AnomalyEvent> events = datasets::PlanEvents(
      generator, config.test_length, config.n_incidents, config.min_duration,
      config.max_duration, config.min_gap, &rng);
  // Keep the planned layout (slots, sensors, magnitudes) but stay in the
  // correlation family — see the header comment.
  for (size_t i = 0; i < events.size(); ++i) {
    events[i].type = i % 3 == 2 ? datasets::AnomalyType::kMixed
                                : datasets::AnomalyType::kCorrelationBreak;
  }
  (void)datasets::InjectAnomalies(generator, events, &test, &rng);
  const std::vector<datasets::InjectedGroundTruth> truths =
      datasets::ExportGroundTruth(events);

  core::CadOptions options;
  options.window = config.window;
  options.step = config.step;
  options.k = config.k;
  options.flight_log_capacity = config.flight_capacity;
  core::CadDetector detector(options);
  const core::DetectionReport report =
      detector.Detect(test, &train).ValueOrDie();
  const std::vector<obs::DecisionRecord>& records = report.flight_log;

  std::fprintf(stderr,
               "[advisor_bench] %d sensors, %d incidents, %zu rounds held "
               "(ring capacity %d)%s\n",
               config.n_sensors, config.n_incidents, records.size(),
               config.flight_capacity, smoke ? " (smoke)" : "");

  struct IncidentResult {
    const datasets::InjectedGroundTruth* truth = nullptr;
    advisor::AdviseWindow window;
    std::vector<int> top;  // leading ranked sensor ids (up to 3)
    bool hit1 = false, hit2 = false, hit3 = false;
  };
  std::vector<IncidentResult> results;
  int hits1 = 0, hits2 = 0, hits3 = 0;

  for (const datasets::InjectedGroundTruth& truth : truths) {
    IncidentResult result;
    result.truth = &truth;
    // The operator's query: the incident's sample span, plus one window of
    // trailing slack — detection of a gradually fading-in break lags onset.
    result.window = advisor::WindowForSamples(
        records, truth.onset_sample, truth.end_sample + config.window / 2);
    const advisor::AdviceReport advice = advisor::Advise(records, result.window);
    // Determinism contract on real data: same records, same bytes.
    if (advisor::AdviceReportToJson(advice) !=
        advisor::AdviceReportToJson(advisor::Advise(records, result.window))) {
      std::fprintf(stderr, "[advisor_bench] FAIL: AdviceReport JSON is not "
                           "deterministic across runs\n");
      return 1;
    }
    std::vector<int> ranking;
    ranking.reserve(advice.ranking.size());
    for (const advisor::SensorFinding& finding : advice.ranking) {
      ranking.push_back(finding.sensor);
    }
    result.top.assign(ranking.begin(),
                      ranking.begin() + std::min<size_t>(3, ranking.size()));
    result.hit1 = eval::RootCauseHitAtK(ranking, truth.sensors, 1);
    result.hit2 = eval::RootCauseHitAtK(ranking, truth.sensors, 2);
    result.hit3 = eval::RootCauseHitAtK(ranking, truth.sensors, 3);
    hits1 += result.hit1 ? 1 : 0;
    hits2 += result.hit2 ? 1 : 0;
    hits3 += result.hit3 ? 1 : 0;
    results.push_back(std::move(result));
  }

  const double n = static_cast<double>(truths.size());
  const double rate1 = n > 0 ? hits1 / n : 0.0;
  const double rate2 = n > 0 ? hits2 / n : 0.0;
  const double rate3 = n > 0 ? hits3 / n : 0.0;
  std::fprintf(stderr,
               "[advisor_bench] hit@1 %.2f, hit@2 %.2f, hit@3 %.2f over %d "
               "incidents\n",
               rate1, rate2, rate3, static_cast<int>(truths.size()));

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "advisor_bench: cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"advisor\",\n"
               "  \"smoke\": %s,\n"
               "  \"config\": {\n"
               "    \"n_sensors\": %d,\n"
               "    \"n_communities\": %d,\n"
               "    \"train_length\": %d,\n"
               "    \"test_length\": %d,\n"
               "    \"n_incidents\": %d,\n"
               "    \"window\": %d,\n"
               "    \"step\": %d,\n"
               "    \"k\": %d,\n"
               "    \"flight_log_capacity\": %d\n"
               "  },\n"
               "  \"rounds_held\": %zu,\n",
               smoke ? "true" : "false", config.n_sensors, config.n_communities,
               config.train_length, config.test_length, config.n_incidents,
               config.window, config.step, config.k, config.flight_capacity,
               records.size());
  std::fprintf(out, "  \"incidents\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const IncidentResult& r = results[i];
    std::fprintf(out,
                 "    {\"type\": \"%s\", \"onset_sample\": %d, "
                 "\"end_sample\": %d, \"rounds\": [%d, %d], \"sensors\": ",
                 TypeName(r.truth->type), r.truth->onset_sample,
                 r.truth->end_sample, r.window.first_round,
                 r.window.last_round);
    PrintIntArray(out, r.truth->sensors);
    std::fprintf(out, ", \"top3\": ");
    PrintIntArray(out, r.top);
    std::fprintf(out, ", \"hit_at_3\": %s}%s\n", r.hit3 ? "true" : "false",
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out,
               "  ],\n"
               "  \"root_cause\": {\n"
               "    \"hit_at_1\": %.4f,\n"
               "    \"hit_at_2\": %.4f,\n"
               "    \"hit_at_3\": %.4f,\n"
               "    \"target_hit_at_3\": 0.9\n"
               "  }\n"
               "}\n",
               rate1, rate2, rate3);
  std::fclose(out);
  std::fprintf(stderr, "[advisor_bench] wrote %s\n", out_path.c_str());

  if (rate3 < 0.9) {
    std::fprintf(stderr,
                 "[advisor_bench] FAIL: hit@3 %.2f below the 0.9 target\n",
                 rate3);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace cad::bench

int main(int argc, char** argv) { return cad::bench::Main(argc, argv); }
