// Table V: the DaE relative measures Ahead and Miss of CAD (M1) against
// every baseline (M2) on PSM, SWaT, IS-1 and IS-2. Each method's score
// series is binarized at its own best-F1(DPA) threshold, per the paper's
// protocol, before comparing first-detection times per ground-truth anomaly.
#include <cstdio>
#include <map>

#include "common/strings.h"
#include "check/check.h"
#include "eval/ahead_miss.h"
#include "harness/harness.h"

namespace cad::bench {
namespace {

int Main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv, /*default_repeats=*/1);
  const std::vector<std::string> methods = args.MethodRoster();

  struct DatasetSetup {
    std::string name;
    int train_length;
    int test_length;
    int n_anomalies;
  };
  const std::vector<DatasetSetup> setups = {
      {"PSM", 1500, 2600, 7},
      {"SWaT", 1500, 2600, 7},
      {"IS-1", 700, 1600, 5},
      {"IS-2", 700, 1600, 5},
  };

  std::printf("Table V: Ahead (Ah) and Miss (Ms) of CAD vs each method\n\n");

  // rows[method] = 8 cells (Ah, Ms per dataset).
  std::map<std::string, std::vector<std::string>> rows;
  for (const DatasetSetup& setup : setups) {
    const datasets::LabeledDataset dataset =
        MakeBenchDataset(setup.name, setup.train_length, setup.test_length,
                         setup.n_anomalies, args.scale);

    const std::vector<MethodResult> results =
        EvaluateMethods(dataset, methods, args.repeats);
    // CAD's binarized prediction (M1).
    const MethodResult* cad = nullptr;
    for (const MethodResult& r : results) {
      if (r.name == "CAD") cad = &r;
    }
    CAD_CHECK(cad != nullptr, "Table V needs CAD in the roster");
    const eval::Labels m1 =
        BinarizeAtBestThreshold(cad->runs[0].scores, dataset.labels,
                                eval::Adjustment::kDelayPointAdjust);

    for (const MethodResult& result : results) {
      if (result.name == "CAD") continue;
      // Average Ahead/Miss over the method's repeats.
      double ahead = 0.0, miss = 0.0;
      for (const MethodRun& run : result.runs) {
        const eval::Labels m2 = BinarizeAtBestThreshold(
            run.scores, dataset.labels, eval::Adjustment::kDelayPointAdjust);
        const eval::AheadMiss cmp = eval::CompareAheadMiss(m1, m2, dataset.labels);
        ahead += cmp.ahead;
        miss += cmp.miss;
      }
      ahead /= static_cast<double>(result.runs.size());
      miss /= static_cast<double>(result.runs.size());
      rows[result.name].push_back(Percent(ahead));
      rows[result.name].push_back(Percent(miss));
    }
    std::fprintf(stderr, "[table5] %s done\n", dataset.name.c_str());
  }

  TablePrinter table({"CAD vs", "PSM Ah", "PSM Ms", "SWaT Ah", "SWaT Ms",
                      "IS-1 Ah", "IS-1 Ms", "IS-2 Ah", "IS-2 Ms"});
  for (const std::string& name : methods) {
    if (name == "CAD") continue;
    std::vector<std::string> row = {name};
    row.insert(row.end(), rows[name].begin(), rows[name].end());
    table.AddRow(std::move(row));
  }
  table.Print();
  args.WriteTelemetryIfRequested();
  return 0;
}

}  // namespace
}  // namespace cad::bench

int main(int argc, char** argv) { return cad::bench::Main(argc, argv); }
