// Table VI: training time (seconds) of the MTS methods on PSM, SWaT, IS-1,
// IS-2 and one SMD subset. For CAD "training" is the warm-up pass; for the
// univariate methods the paper reports no training time (they are fitted on
// the input), marked "/".
#include <cstdio>
#include <map>
#include <set>

#include "common/strings.h"
#include "harness/harness.h"

namespace cad::bench {
namespace {

int Main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv, /*default_repeats=*/1);
  const std::set<std::string> mts_methods = {"CAD",     "LOF",  "ECOD",
                                             "IForest", "USAD", "RCoders"};

  struct DatasetSetup {
    std::string name;
    int train_length;
    int test_length;
    int n_anomalies;
  };
  const std::vector<DatasetSetup> setups = {
      {"PSM", 1500, 2000, 5},  {"SWaT", 1500, 2200, 5}, {"IS-1", 700, 1400, 4},
      {"IS-2", 700, 1400, 4},  {"SMD-1", 800, 1100, 3},
  };

  std::printf("Table VI: training time of all MTS methods (seconds)\n\n");

  std::map<std::string, std::vector<std::string>> rows;
  for (const DatasetSetup& setup : setups) {
    const datasets::LabeledDataset dataset =
        MakeBenchDataset(setup.name, setup.train_length, setup.test_length,
                         setup.n_anomalies, args.scale);

    std::vector<std::string> roster;
    for (const std::string& name : args.MethodRoster()) {
      if (mts_methods.count(name)) roster.push_back(name);
    }
    const std::vector<MethodResult> results =
        EvaluateMethods(dataset, roster, args.repeats);
    for (const MethodResult& result : results) {
      double fit = 0.0;
      for (const MethodRun& run : result.runs) fit += run.fit_seconds;
      fit /= static_cast<double>(result.runs.size());
      rows[result.name].push_back(Seconds(fit, 2));
    }
    std::fprintf(stderr, "[table6] %s done\n", dataset.name.c_str());
  }

  TablePrinter table({"Method", "PSM", "SWaT", "IS-1", "IS-2", "SMD"});
  for (const std::string& name : args.MethodRoster()) {
    std::vector<std::string> row = {name};
    if (mts_methods.count(name)) {
      row.insert(row.end(), rows[name].begin(), rows[name].end());
    } else {
      row.insert(row.end(), 5, "/");
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  args.WriteTelemetryIfRequested();
  return 0;
}

}  // namespace
}  // namespace cad::bench

int main(int argc, char** argv) { return cad::bench::Main(argc, argv); }
