// Table IV: abnormal time and abnormal sensor detection on the 28 SMD
// subsets. For every baseline: OP = number of subsets where CAD outperforms
// it (F1_PA and F1_DPA), plus mean ± std of each method's F1 across subsets,
// plus the F1_sensor OP count against the two sensor-capable baselines
// (ECOD, RCoders). CAD runs without warm-up on SMD, as in the paper.
#include <cstdio>
#include <map>

#include "common/strings.h"
#include "check/check.h"
#include "eval/sensor_eval.h"
#include "harness/harness.h"

namespace cad::bench {
namespace {

int Main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv, /*default_repeats=*/1);
  const std::vector<std::string> methods = args.MethodRoster();
  const int n_subsets = 28;

  std::printf("Table IV: SMD (28 subsets), OP = #subsets CAD outperforms\n");
  std::printf("(repeats=%d, scale=%.2f)\n\n", args.repeats, args.scale);

  std::map<std::string, std::vector<double>> f1_pa, f1_dpa, f1_sensor;
  for (int subset = 1; subset <= n_subsets; ++subset) {
    const datasets::LabeledDataset dataset = MakeBenchDataset(
        "SMD-" + std::to_string(subset), 800, 1100, 3, args.scale);

    const std::vector<MethodResult> results = EvaluateMethods(
        dataset, methods, args.repeats, /*base_seed=*/subset * 131,
        /*cad_warmup=*/false);
    for (const MethodResult& result : results) {
      f1_pa[result.name].push_back(
          BestF1Summary(result, dataset.labels, eval::Adjustment::kPointAdjust)
              .mean);
      f1_dpa[result.name].push_back(
          BestF1Summary(result, dataset.labels,
                        eval::Adjustment::kDelayPointAdjust)
              .mean);

      // Sensor-level F1 for the methods that can attribute sensors.
      if (result.name == "CAD") {
        f1_sensor[result.name].push_back(eval::SensorF1(
            result.runs[0].sensor_predictions, dataset.anomalies));
      } else if (result.name == "ECOD" || result.name == "RCoders") {
        auto method = baselines::MakeMethod(result.name, dataset.recommended,
                                            subset * 131);
        if (dataset.has_train()) {
          // Hoisted out of the check: CAD_CHECK conditions must stay
          // side-effect free (they vanish at CAD_CHECK_LEVEL=off).
          const Status fit_status = method->Fit(dataset.train);
          CAD_CHECK(fit_status.ok(), "fit failed: ", fit_status.ToString());
        }
        method->Score(dataset.test).ValueOrDie();
        const auto sensor_scores =
            method->SensorScores(dataset.test).ValueOrDie();
        const eval::Labels pred = BinarizeAtBestThreshold(
            result.runs[0].scores, dataset.labels,
            eval::Adjustment::kDelayPointAdjust);
        f1_sensor[result.name].push_back(eval::SensorF1(
            SensorPredictionsFromScores(sensor_scores, pred),
            dataset.anomalies));
      }
    }
    std::fprintf(stderr, "[table4] subset %d/%d done\n", subset, n_subsets);
  }

  auto op_count = [&](const std::vector<double>& cad,
                      const std::vector<double>& other) {
    int op = 0;
    for (size_t i = 0; i < cad.size(); ++i) {
      if (cad[i] > other[i]) ++op;
    }
    return op;
  };

  TablePrinter table({"Method", "OP(F1_PA)", "F1_PA mean+-std", "OP(F1_DPA)",
                      "F1_DPA mean+-std", "OP(F1_sensor)"});
  for (const std::string& name : methods) {
    const MetricSummary pa = Summarize(f1_pa[name]);
    const MetricSummary dpa = Summarize(f1_dpa[name]);
    std::vector<std::string> row = {name};
    if (name == "CAD") {
      row.push_back("-");
    } else {
      row.push_back(std::to_string(op_count(f1_pa["CAD"], f1_pa[name])));
    }
    row.push_back(Percent(pa.mean) + "+-" + Percent(pa.stddev));
    if (name == "CAD") {
      row.push_back("-");
    } else {
      row.push_back(std::to_string(op_count(f1_dpa["CAD"], f1_dpa[name])));
    }
    row.push_back(Percent(dpa.mean) + "+-" + Percent(dpa.stddev));
    if (name == "ECOD" || name == "RCoders") {
      row.push_back(
          std::to_string(op_count(f1_sensor["CAD"], f1_sensor[name])));
    } else if (name == "CAD") {
      const MetricSummary s = Summarize(f1_sensor["CAD"]);
      row.push_back("mean " + Percent(s.mean));
    } else {
      row.push_back("/");
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  args.WriteTelemetryIfRequested();
  return 0;
}

}  // namespace
}  // namespace cad::bench

int main(int argc, char** argv) { return cad::bench::Main(argc, argv); }
