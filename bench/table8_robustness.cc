// Table VIII: robustness — the *minimum* F1_PA and F1_DPA over repeated runs
// on PSM, SWaT, IS-1 and IS-2. Deterministic methods (CAD, LOF, ECOD, S2G)
// have min == mean by construction; the gap for the stochastic methods is
// the instability the paper highlights.
#include <cstdio>
#include <map>

#include "common/strings.h"
#include "harness/harness.h"

namespace cad::bench {
namespace {

int Main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv, /*default_repeats=*/3);
  const std::vector<std::string> methods = args.MethodRoster();

  struct DatasetSetup {
    std::string name;
    int train_length;
    int test_length;
    int n_anomalies;
  };
  const std::vector<DatasetSetup> setups = {
      {"PSM", 1500, 2000, 5},
      {"SWaT", 1500, 2200, 5},
      {"IS-1", 700, 1400, 4},
      {"IS-2", 700, 1400, 4},
  };

  std::printf("Table VIII: minimum F1_PA / F1_DPA over %d repeats\n\n",
              args.repeats);

  std::map<std::string, std::vector<std::string>> rows;
  std::map<std::string, bool> deterministic;
  for (const DatasetSetup& setup : setups) {
    const datasets::LabeledDataset dataset =
        MakeBenchDataset(setup.name, setup.train_length, setup.test_length,
                         setup.n_anomalies, args.scale);

    const std::vector<MethodResult> results =
        EvaluateMethods(dataset, methods, args.repeats);
    for (const MethodResult& result : results) {
      deterministic[result.name] = result.deterministic;
      const MetricSummary pa = BestF1Summary(result, dataset.labels,
                                             eval::Adjustment::kPointAdjust);
      const MetricSummary dpa = BestF1Summary(
          result, dataset.labels, eval::Adjustment::kDelayPointAdjust);
      rows[result.name].push_back(Percent(pa.min));
      rows[result.name].push_back(Percent(dpa.min));
    }
    std::fprintf(stderr, "[table8] %s done\n", dataset.name.c_str());
  }

  TablePrinter table({"Method", "PSM minPA", "PSM minDPA", "SWaT minPA",
                      "SWaT minDPA", "IS-1 minPA", "IS-1 minDPA",
                      "IS-2 minPA", "IS-2 minDPA", "Det?"});
  for (const std::string& name : methods) {
    std::vector<std::string> row = {name};
    row.insert(row.end(), rows[name].begin(), rows[name].end());
    row.push_back(deterministic[name] ? "yes" : "no");
    table.AddRow(std::move(row));
  }
  table.Print();
  args.WriteTelemetryIfRequested();
  return 0;
}

}  // namespace
}  // namespace cad::bench

int main(int argc, char** argv) { return cad::bench::Main(argc, argv); }
